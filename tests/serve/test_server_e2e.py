"""End-to-end: real sockets against the serve front end.

The acceptance check from the issue lives here: a live UDP query must
return the same ANSWER rrsets the simulated CachingServer produces for
an identically built scenario — the front end is a transport skin, not
a different resolver.
"""

from __future__ import annotations

import asyncio
import struct
import threading
from contextlib import asynccontextmanager

import pytest

from repro.core.caching_server import CachingServer
from repro.core.schemes import parse_scheme
from repro.dns.message import Question, Rcode
from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.experiments.scenarios import Scale, make_scenario
from repro.serve.server import DnsFrontEnd
from repro.serve.spec import ServeSpec
from repro.serve.wire import (
    FLAG_QR,
    decode_message,
    encode_query,
    frame_tcp,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network

_SPEC = ServeSpec(
    host="127.0.0.1", port=0, metrics_port=0, scale=Scale.TINY, seed=7
)


@asynccontextmanager
async def _front_end(spec: ServeSpec = _SPEC):
    front_end = DnsFrontEnd(spec)
    await front_end.start()
    try:
        yield front_end
    finally:
        await front_end.stop()


class _OneShot(asyncio.DatagramProtocol):
    def __init__(self, future: asyncio.Future) -> None:
        self._future = future

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        if not self._future.done():
            self._future.set_result(data)


async def _udp_query(
    address: tuple[str, int], packet: bytes, timeout: float = 5.0
) -> bytes:
    loop = asyncio.get_running_loop()
    future: asyncio.Future[bytes] = loop.create_future()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: _OneShot(future), remote_addr=address
    )
    try:
        transport.sendto(packet)
        return await asyncio.wait_for(future, timeout)
    finally:
        transport.close()


async def _tcp_query(
    address: tuple[str, int], packet: bytes, timeout: float = 5.0
) -> bytes:
    reader, writer = await asyncio.open_connection(*address)
    try:
        writer.write(frame_tcp(packet))
        await writer.drain()
        header = await asyncio.wait_for(reader.readexactly(2), timeout)
        (length,) = struct.unpack("!H", header)
        return await asyncio.wait_for(reader.readexactly(length), timeout)
    finally:
        writer.close()


async def _scrape(address: tuple[str, int]) -> str:
    reader, writer = await asyncio.open_connection(*address)
    try:
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        return raw.decode("utf-8")
    finally:
        writer.close()


def _simulated_resolutions(names, rrtype=RRType.A):
    """Resolve ``names`` on a CachingServer built exactly like the front
    end's (same scale/seed/scheme), on virtual time."""
    scenario = make_scenario(Scale.TINY, seed=_SPEC.seed)
    engine = SimulationEngine()
    server = CachingServer(
        root_hints=scenario.built.tree.root_hints(),
        network=Network(scenario.built.tree),
        clock=engine,
        config=parse_scheme(_SPEC.scheme),
    )
    return {
        name: server.handle_stub_query(name, rrtype, engine.now)
        for name in names
    }


class TestUdpPath:
    def test_live_answers_match_the_simulated_core(self):
        """Acceptance: the wire ANSWER section carries the same rrsets
        (owner, rdata, published TTL) the simulated resolver returns."""

        async def run():
            async with _front_end() as front_end:
                names = front_end.sample_names(3)
                assert len(names) == 3
                replies = {}
                for index, name in enumerate(names):
                    packet = encode_query(
                        Question(name, RRType.A), 0x4000 + index
                    )
                    replies[name] = await _udp_query(
                        front_end.udp_address, packet
                    )
                return names, replies, front_end.metrics.udp_queries

        names, replies, udp_queries = asyncio.run(run())
        assert udp_queries == 3
        expected = _simulated_resolutions(names)
        for index, name in enumerate(names):
            decoded = decode_message(replies[name])
            message = decoded.message
            assert message.message_id == 0x4000 + index
            assert message.rcode is Rcode.NOERROR
            assert not decoded.truncated
            (served,) = message.answer
            simulated = expected[name].answer
            assert simulated is not None
            assert served.name == simulated.name
            assert served.rrtype is RRType.A
            assert {str(r.data) for r in served.records} == {
                str(r.data) for r in simulated.records
            }
            assert served.ttl == float(int(simulated.ttl))

    def test_unknown_name_is_nxdomain(self):
        async def run():
            async with _front_end() as front_end:
                packet = encode_query(
                    Question(Name.from_text("no.such.host.zz"), RRType.A), 77
                )
                return await _udp_query(front_end.udp_address, packet)

        decoded = decode_message(asyncio.run(run()))
        assert decoded.message.rcode is Rcode.NXDOMAIN
        assert decoded.message.answer == ()
        assert decoded.message.message_id == 77

    def test_mixed_case_qname_is_echoed_verbatim(self):
        """0x20-style case mixing must survive into the response's
        question section (clients compare the echoed octets)."""

        async def run():
            async with _front_end() as front_end:
                name = front_end.sample_names(1)[0]
                raw = tuple(
                    label.upper() if i % 2 == 0 else label
                    for i, label in enumerate(name.labels)
                )
                packet = encode_query(
                    Question(name, RRType.A), 5, raw_labels=raw
                )
                return raw, await _udp_query(front_end.udp_address, packet)

        raw, reply = asyncio.run(run())
        wire_qname = b"".join(
            bytes([len(label)]) + label.encode() for label in raw
        )
        assert wire_qname in reply
        assert decode_message(reply).message.rcode is Rcode.NOERROR

    def test_garbage_gets_formerr(self):
        async def run():
            async with _front_end() as front_end:
                # A valid header claiming one question, then nothing.
                packet = struct.pack("!HHHHHH", 0xABCD, 0, 1, 0, 0, 0)
                reply = await _udp_query(front_end.udp_address, packet)
                return reply, front_end.metrics.formerr

        reply, formerr = asyncio.run(run())
        assert formerr == 1
        message_id, flags = struct.unpack_from("!HH", reply)
        assert message_id == 0xABCD
        assert flags & FLAG_QR
        assert flags & 0xF == int(Rcode.FORMERR)


class TestTcpPath:
    def test_tcp_carries_the_same_answer_as_udp(self):
        async def run():
            async with _front_end() as front_end:
                name = front_end.sample_names(1)[0]
                packet = encode_query(Question(name, RRType.A), 9)
                udp_reply = await _udp_query(front_end.udp_address, packet)
                tcp_reply = await _tcp_query(front_end.udp_address, packet)
                return udp_reply, tcp_reply, front_end.metrics.tcp_queries

        udp_reply, tcp_reply, tcp_queries = asyncio.run(run())
        assert tcp_queries == 1
        udp_message = decode_message(udp_reply).message
        tcp_message = decode_message(tcp_reply).message
        assert tcp_message.answer == udp_message.answer
        assert tcp_message.rcode is Rcode.NOERROR

    def test_truncated_udp_falls_back_to_tcp(self):
        """Force a tiny UDP ceiling: the UDP reply degrades to TC +
        question, and the TCP retry carries the full answer."""

        async def run():
            import dataclasses

            # The TINY zone's answers are all sub-64-octet, below the
            # spec's validated floor — push the ceiling under them on a
            # private spec copy to exercise the fallback end to end.
            spec = dataclasses.replace(_SPEC)
            object.__setattr__(spec, "udp_payload_max", 40)
            async with _front_end(spec) as front_end:
                name = front_end.sample_names(1)[0]
                packet = encode_query(Question(name, RRType.A), 31)
                udp_reply = await _udp_query(front_end.udp_address, packet)
                tcp_reply = await _tcp_query(front_end.udp_address, packet)
                return udp_reply, tcp_reply, front_end.metrics.truncated

        udp_reply, tcp_reply, truncated = asyncio.run(run())
        assert truncated == 1
        udp_decoded = decode_message(udp_reply)
        assert udp_decoded.truncated
        assert udp_decoded.message.answer == ()
        tcp_decoded = decode_message(tcp_reply)
        assert not tcp_decoded.truncated
        assert tcp_decoded.message.answer
        assert tcp_decoded.message.question == udp_decoded.message.question


class TestFrontEndSemantics:
    def _query_for(self, front_end: DnsFrontEnd):
        from repro.serve.wire import decode_query

        name = front_end.sample_names(1)[0]
        return decode_query(encode_query(Question(name, RRType.A), 1))

    def test_singleflight_collapses_concurrent_identical_questions(self):
        async def run():
            async with _front_end() as front_end:
                query = self._query_for(front_end)
                gate = threading.Event()
                # Stall the (single) resolver thread so the leader's
                # resolution stays in flight while followers arrive.
                front_end._executor.submit(gate.wait)
                leader = asyncio.ensure_future(front_end._resolve(query))
                await asyncio.sleep(0.05)
                follower = asyncio.ensure_future(front_end._resolve(query))
                await asyncio.sleep(0.05)
                hits = front_end.metrics.singleflight_hits
                gate.set()
                first, second = await asyncio.gather(leader, follower)
                return hits, first, second, front_end.metrics.stale_served

        hits, first, second, stale = asyncio.run(run())
        assert hits == 1
        assert stale == 0  # no memo yet: the follower awaited the flight
        assert first.answer == second.answer
        assert first.rcode is Rcode.NOERROR and first.answer

    def test_follower_is_served_stale_during_refetch(self):
        async def run():
            async with _front_end() as front_end:
                query = self._query_for(front_end)
                # Populate the serve-stale memo with a completed answer.
                warm = await front_end._resolve(query)
                gate = threading.Event()
                front_end._executor.submit(gate.wait)
                leader = asyncio.ensure_future(front_end._resolve(query))
                await asyncio.sleep(0.05)
                # The follower must answer *now*, while the refetch is
                # still blocked behind the gate.
                follower = await asyncio.wait_for(
                    front_end._resolve(query), timeout=1.0
                )
                stale = front_end.metrics.stale_served
                gate.set()
                await leader
                return warm, follower, stale

        warm, follower, stale = asyncio.run(run())
        assert stale == 1
        assert follower.answer == warm.answer

    def test_client_budget_rejects_concurrent_over_budget_queries(self):
        """With a 1-unit client budget, a second *distinct* question from
        the same client while the first is still resolving is refused
        with SERVFAIL; other clients and post-release queries proceed."""
        import dataclasses

        from repro.serve.wire import decode_query

        spec = dataclasses.replace(_SPEC, client_fetch_budget=1)

        async def run():
            async with _front_end(spec) as front_end:
                names = front_end.sample_names(3)
                queries = [
                    decode_query(encode_query(Question(name, RRType.A), i + 1))
                    for i, name in enumerate(names)
                ]
                gate = threading.Event()
                front_end._executor.submit(gate.wait)
                leader = asyncio.ensure_future(
                    front_end._resolve(queries[0], client="10.9.9.9")
                )
                await asyncio.sleep(0.05)
                # Distinct question (no singleflight), same client: the
                # one-unit budget is spent, so this must fail *now*,
                # without waiting on the stalled resolver thread.
                rejected = await asyncio.wait_for(
                    front_end._resolve(queries[1], client="10.9.9.9"),
                    timeout=1.0,
                )
                rejections = front_end.metrics.budget_rejections
                # A different client has its own untouched budget.
                other = asyncio.ensure_future(
                    front_end._resolve(queries[1], client="10.8.8.8")
                )
                await asyncio.sleep(0.05)
                gate.set()
                first = await leader
                other_reply = await other
                # The leader released its unit: the client may query again.
                third = await front_end._resolve(
                    queries[2], client="10.9.9.9"
                )
                return (rejected, rejections, first, other_reply, third,
                        front_end.metrics.budget_rejections,
                        front_end.metrics.render())

        (rejected, rejections, first, other_reply, third,
         final_rejections, rendered) = asyncio.run(run())
        assert rejected.rcode is Rcode.SERVFAIL
        assert rejected.answer == ()
        assert rejections == 1
        assert first.rcode is Rcode.NOERROR
        assert other_reply.rcode is Rcode.NOERROR
        assert third.rcode is Rcode.NOERROR
        assert final_rejections == 1
        assert "repro_serve_budget_rejections_total 1" in rendered

    def test_default_spec_has_no_client_budget(self):
        async def run():
            async with _front_end() as front_end:
                return front_end._client_budget("10.9.9.9")

        assert asyncio.run(run()) is None

    def test_negative_client_budget_rejected(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(_SPEC, client_fetch_budget=-1)

    def test_metrics_endpoint_exposes_both_layers(self):
        async def run():
            async with _front_end() as front_end:
                name = front_end.sample_names(1)[0]
                packet = encode_query(Question(name, RRType.A), 2)
                await _udp_query(front_end.udp_address, packet)
                if front_end.metrics_address is None:
                    raise AssertionError("metrics listener did not bind")
                return await _scrape(front_end.metrics_address)

        body = asyncio.run(run())
        assert body.startswith("HTTP/1.0 200 OK")
        assert 'repro_serve_queries_total{transport="udp"} 1' in body
        assert 'repro_serve_queries_total{transport="tcp"} 0' in body
        # The obs PrometheusSink block rides along in the same scrape:
        # the resolution emitted core events through the bus.
        assert "repro_events_total" in body

    def test_selftest_driver_round_trip(self):
        """The closed-loop driver reports every query answered against a
        healthy front end."""
        from repro.serve.driver import run_load

        async def run():
            async with _front_end() as front_end:
                names = front_end.sample_names(4)
                return await run_load(
                    *front_end.udp_address,
                    names,
                    queries=24,
                    clients=3,
                )

        report = asyncio.run(run())
        assert report.queries == 24
        assert report.answered == 24
        assert report.failed == 0
        assert report.qps > 0
        assert report.p99_ms >= report.p50_ms >= 0
        parsed = __import__("json").loads(report.to_json())
        assert parsed["answered"] == 24
