"""UdpUpstream: the Upstream protocol over a real socket.

A fake authoritative server (a plain UDP socket on a thread) answers,
stays silent, or talks garbage; the upstream must map each case onto
the same :class:`QueryResult` shapes the simulated Network returns —
that contract is what makes the two interchangeable under the core.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.transport import Upstream
from repro.dns.message import Message, Question
from repro.dns.name import Name
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.experiments.scenarios import Scale, make_scenario
from repro.serve.upstream import UdpUpstream
from repro.serve.wire import decode_query, encode_response
from repro.simulation.network import Network, QueryResult


class _FakeAuthoritative:
    """One-socket UDP responder; ``handler(packet) -> reply | None``."""

    def __init__(self, handler) -> None:
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.settimeout(5.0)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            while True:
                data, addr = self._sock.recvfrom(4096)
                reply = self._handler(data)
                if reply is not None:
                    self._sock.sendto(reply, addr)
        except OSError:
            return  # socket closed by __exit__

    def __enter__(self) -> "_FakeAuthoritative":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._sock.close()
        self._thread.join(timeout=5.0)


def _answer_a(packet: bytes) -> bytes:
    decoded = decode_query(packet)
    name = decoded.question.name
    rrset = RRset.from_records(
        [ResourceRecord(name, RRType.A, 120, "10.9.8.7")]
    )
    message = Message(
        question=decoded.question,
        authoritative=True,
        answer=(rrset,),
        message_id=decoded.message_id,
    )
    return encode_response(message)


class TestProtocolConformance:
    def test_both_transports_satisfy_upstream(self):
        assert isinstance(UdpUpstream(), Upstream)
        built = make_scenario(Scale.TINY, seed=7).built
        assert isinstance(Network(built.tree), Upstream)

    def test_query_timeout_is_the_configured_timeout(self):
        assert UdpUpstream(timeout=0.25).query_timeout == 0.25

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            UdpUpstream(timeout=0.0)


class TestQuery:
    def test_answered_query(self):
        upstream = UdpUpstream(timeout=5.0)
        question = Question(Name.from_text("www.ucla.edu"), RRType.A)
        with _FakeAuthoritative(_answer_a) as authoritative:
            result = upstream.query(
                f"127.0.0.1:{authoritative.port}", question, 0.0
            )
        assert isinstance(result, QueryResult)
        assert not result.timed_out
        assert result.message is not None
        assert result.message.question == question
        (answer,) = result.message.answer
        assert [str(r.data) for r in answer.records] == ["10.9.8.7"]
        assert result.latency >= 0.0
        assert upstream.queries_sent == 1
        assert upstream.queries_lost == 0

    def test_silent_server_times_out(self):
        upstream = UdpUpstream(timeout=0.2)
        question = Question(Name.from_text("a.b"), RRType.A)
        with _FakeAuthoritative(lambda _packet: None) as authoritative:
            result = upstream.query(
                f"127.0.0.1:{authoritative.port}", question, 0.0
            )
        assert result.message is None
        assert result.timed_out
        assert result.latency == upstream.query_timeout
        assert upstream.queries_lost == 1

    def test_garbage_reply_is_a_fast_negative(self):
        """Undecodable answers behave like a lame server: unanswered,
        not a timeout."""
        upstream = UdpUpstream(timeout=5.0)
        question = Question(Name.from_text("a.b"), RRType.A)
        with _FakeAuthoritative(
            lambda _packet: b"\xff\xff not dns"
        ) as authoritative:
            result = upstream.query(
                f"127.0.0.1:{authoritative.port}", question, 0.0
            )
        assert result.message is None
        assert not result.timed_out
        assert upstream.queries_lost == 1

    def test_mismatched_id_is_ignored_until_the_real_answer(self):
        """Off-id datagrams (spoofing noise) are skipped, not returned."""

        class _TwoPacketAuthoritative(_FakeAuthoritative):
            def _run(self) -> None:
                try:
                    # First a response with a flipped id, then the real
                    # one — the upstream must wait for the match.
                    data, addr = self._sock.recvfrom(4096)
                    good = _answer_a(data)
                    bad = bytearray(good)
                    bad[0] ^= 0xFF
                    self._sock.sendto(bytes(bad), addr)
                    self._sock.sendto(good, addr)
                except OSError:
                    return

        upstream = UdpUpstream(timeout=5.0)
        question = Question(Name.from_text("www.ucla.edu"), RRType.A)
        with _TwoPacketAuthoritative(lambda _packet: None) as authoritative:
            result = upstream.query(
                f"127.0.0.1:{authoritative.port}", question, 0.0
            )
        assert result.message is not None
        assert result.message.answer

    def test_bare_ip_defaults_to_port_53_and_never_raises(self):
        """A bare IP parses (port 53); whatever sits there — usually
        nothing — the contract is a QueryResult, not an exception."""
        upstream = UdpUpstream(timeout=0.1)
        question = Question(Name.from_text("a.b"), RRType.A)
        result = upstream.query("127.0.0.1", question, 0.0)
        assert isinstance(result, QueryResult)
        assert upstream.queries_sent == 1


class TestInterchangeability:
    def test_same_result_shape_as_the_simulated_network(self):
        """Both transports answer the same question with QueryResult
        values the core treats identically (message or timeout)."""
        built = make_scenario(Scale.TINY, seed=7).built
        network = Network(built.tree)
        assert network.query_timeout > 0

        def run_core_with(upstream: Upstream):
            from repro.core.caching_server import CachingServer
            from repro.simulation.engine import SimulationEngine

            engine = SimulationEngine()
            server = CachingServer(
                root_hints=built.tree.root_hints(),
                network=upstream,
                clock=engine,
            )
            names = [
                hosts[0]
                for _zone, hosts in sorted(built.catalog.items())
                if hosts
            ]
            return server.handle_stub_query(names[0], RRType.A, engine.now)

        resolution = run_core_with(network)
        assert resolution.answer is not None
