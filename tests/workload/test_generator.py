"""Tests for the synthetic workload generator."""

import math

import pytest

from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.workload.generator import DAY, TraceGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def catalog():
    result = {}
    for index in range(40):
        zone = Name.from_text(f"z{index}.test")
        result[zone] = [zone.child("www"), zone.child("mail"), zone.child("ftp")]
    return result


def small_config(**overrides):
    defaults = dict(duration_days=2.0, queries_per_day=2000, num_clients=20)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestGeneration:
    def test_deterministic_for_same_seed(self, catalog):
        first = TraceGenerator(catalog, small_config(), seed=5).generate("T")
        second = TraceGenerator(catalog, small_config(), seed=5).generate("T")
        assert len(first) == len(second)
        assert all(
            a.qname == b.qname and a.time == b.time
            for a, b in zip(first, second)
        )

    def test_streams_decorrelate(self, catalog):
        generator = TraceGenerator(catalog, small_config(), seed=5)
        one = generator.generate("T1", stream=1)
        two = generator.generate("T2", stream=2)
        assert [q.qname for q in one.queries[:50]] != [q.qname for q in two.queries[:50]]

    def test_trace_is_valid(self, catalog):
        trace = TraceGenerator(catalog, small_config(), seed=1).generate("T")
        trace.validate_ordering()
        assert trace.duration == 2.0 * DAY

    def test_volume_near_expectation(self, catalog):
        config = small_config(duration_days=4.0, queries_per_day=3000)
        trace = TraceGenerator(catalog, config, seed=2).generate("T")
        expected = 4.0 * 3000
        assert abs(len(trace) - expected) < 5 * math.sqrt(expected)

    def test_names_come_from_catalog(self, catalog):
        trace = TraceGenerator(catalog, small_config(), seed=3).generate("T")
        hosts = {host for hosts in catalog.values() for host in hosts}
        assert all(query.qname in hosts for query in trace)

    def test_client_ids_in_range(self, catalog):
        config = small_config(num_clients=7)
        trace = TraceGenerator(catalog, config, seed=4).generate("T")
        assert {query.client_id for query in trace} <= set(range(7))

    def test_qtype_mix_roughly_respected(self, catalog):
        trace = TraceGenerator(catalog, small_config(), seed=6).generate("T")
        a_share = sum(1 for q in trace if q.rrtype is RRType.A) / len(trace)
        assert 0.90 < a_share < 0.98

    def test_zipf_popularity_is_skewed(self, catalog):
        trace = TraceGenerator(catalog, small_config(), seed=7).generate("T")
        counts = {}
        for query in trace:
            zone = query.qname.parent()
            counts[zone] = counts.get(zone, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # Top zone should dwarf the median zone under Zipf ~1.15.
        assert ranked[0] > 5 * ranked[len(ranked) // 2]

    def test_diurnal_modulation_visible(self, catalog):
        config = small_config(duration_days=4.0, queries_per_day=6000,
                              diurnal_amplitude=0.8)
        trace = TraceGenerator(catalog, config, seed=8).generate("T")
        night = sum(1 for q in trace if (q.time % DAY) < DAY / 4)
        day = sum(1 for q in trace if DAY / 2 <= (q.time % DAY) < 3 * DAY / 4)
        assert day > 1.5 * night

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator({}, small_config())


class TestConfigValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            WorkloadConfig(duration_days=0)

    def test_bad_clients(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_clients=0)

    def test_bad_shared_fraction(self):
        with pytest.raises(ValueError):
            WorkloadConfig(shared_interest_fraction=1.5)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            WorkloadConfig(diurnal_amplitude=1.0)

    def test_qtype_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadConfig(qtype_mix=((RRType.A, 0.5),))
