"""Tests for Table-1 statistics computation."""

from repro.dns.name import Name
from repro.workload.stats import compute_statistics
from repro.workload.trace import Trace, TraceQuery

from tests.helpers import build_mini_internet


def make_trace():
    queries = [
        TraceQuery(1.0, 0, Name.from_text("www.example.test")),
        TraceQuery(2.0, 1, Name.from_text("mail.example.test")),
        TraceQuery(3.0, 0, Name.from_text("www.example.test")),
        TraceQuery(4.0, 2, Name.from_text("www.hosted.test")),
        TraceQuery(5.0, 2, Name.from_text("www.dept.example.test")),
    ]
    return Trace(name="TRC-X", duration=86400.0 * 2, queries=queries)


class TestStatistics:
    def test_counts_without_tree(self):
        stats = compute_statistics(make_trace())
        assert stats.requests_in == 5
        assert stats.clients == 3
        assert stats.distinct_names == 4
        # Without a tree, zones are approximated by stripping one label.
        assert stats.distinct_zones == 3
        assert stats.duration_days == 2.0
        assert stats.requests_out is None

    def test_counts_with_tree_use_real_zones(self):
        mini = build_mini_internet()
        stats = compute_statistics(make_trace(), tree=mini.tree)
        # example.test., hosted.test., dept.example.test.
        assert stats.distinct_zones == 3

    def test_requests_out_passthrough(self):
        stats = compute_statistics(make_trace(), requests_out=42)
        assert stats.requests_out == 42
        assert stats.as_row()[4] == 42

    def test_as_row_formats_missing_out(self):
        stats = compute_statistics(make_trace())
        assert stats.as_row()[4] == "-"
        assert stats.as_row()[0] == "TRC-X"
