"""Tests for trace representation and the text format."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.workload.trace import (
    Trace,
    TraceQuery,
    read_trace,
    trace_from_lines,
    trace_to_text,
    write_trace,
)


def make_trace(times=(1.0, 2.0, 3.0)):
    queries = [
        TraceQuery(time, client_id=index % 2,
                   qname=Name.from_text(f"h{index}.z.test"))
        for index, time in enumerate(times)
    ]
    return Trace(name="T", duration=10.0, queries=queries)


class TestTrace:
    def test_counts(self):
        trace = make_trace()
        assert len(trace) == 3
        assert trace.client_count() == 2
        assert trace.distinct_names() == 3

    def test_time_span(self):
        assert make_trace().time_span() == (1.0, 3.0)
        assert Trace("e", 1.0).time_span() == (0.0, 0.0)

    def test_validate_ordering_accepts_sorted(self):
        make_trace().validate_ordering()

    def test_validate_ordering_rejects_unsorted(self):
        trace = make_trace(times=(3.0, 1.0))
        with pytest.raises(ValueError):
            trace.validate_ordering()

    def test_validate_ordering_rejects_beyond_duration(self):
        trace = make_trace(times=(1.0, 11.0))
        with pytest.raises(ValueError):
            trace.validate_ordering()

    def test_slice_window_half_open(self):
        trace = make_trace(times=(1.0, 2.0, 3.0))
        window = trace.slice_window(2.0, 3.0)
        assert [query.time for query in window] == [2.0]

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Trace("bad", 0.0)


class TestTextFormat:
    def test_roundtrip_via_file(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == "T"
        assert loaded.duration == 10.0
        assert len(loaded) == len(trace)
        assert loaded.queries[0].qname == trace.queries[0].qname

    def test_qtype_preserved(self, tmp_path):
        trace = Trace("T", 10.0, [
            TraceQuery(1.0, 0, Name.from_text("a.z.test"), RRType.MX)
        ])
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        assert read_trace(path).queries[0].rrtype is RRType.MX

    def test_header_optional(self):
        trace = trace_from_lines(["1.0 5 www.x.test. A"], default_name="fallback")
        assert trace.name == "fallback"
        assert len(trace) == 1

    def test_qtype_defaults_to_a(self):
        trace = trace_from_lines(["1.0 5 www.x.test."])
        assert trace.queries[0].rrtype is RRType.A

    def test_blank_lines_and_comments_skipped(self):
        trace = trace_from_lines(["", "# comment", "1.0 0 a.test. A"])
        assert len(trace) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            trace_from_lines(["1.0 0"])

    def test_unsorted_file_rejected(self):
        with pytest.raises(ValueError):
            trace_from_lines(["2.0 0 a.test. A", "1.0 0 b.test. A"])

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.integers(min_value=0, max_value=99),
            st.sampled_from(["www.alpha.test", "mail.beta.test", "x.gamma.test"]),
            st.sampled_from([RRType.A, RRType.AAAA, RRType.MX]),
        ),
        max_size=30,
    ))
    def test_text_roundtrip_property(self, rows):
        rows.sort(key=lambda row: row[0])
        queries = [
            TraceQuery(time, client, Name.from_text(qname), rrtype)
            for time, client, qname, rrtype in rows
        ]
        trace = Trace("P", duration=200.0, queries=queries)
        loaded = trace_from_lines(trace_to_text(trace).splitlines())
        assert len(loaded) == len(trace)
        for original, parsed in zip(trace, loaded):
            assert parsed.qname == original.qname
            assert parsed.client_id == original.client_id
            assert parsed.rrtype == original.rrtype
            assert parsed.time == pytest.approx(original.time, abs=1e-4)
