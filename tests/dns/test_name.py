"""Unit + property tests for domain names."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.errors import NameParseError
from repro.dns.name import MAX_LABEL_LENGTH, Name, root_name


def labels_strategy():
    label = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
        min_size=1,
        max_size=12,
    )
    return st.lists(label, min_size=0, max_size=5)


class TestParsing:
    def test_simple_name(self):
        name = Name.from_text("www.ucla.edu")
        assert name.labels == ("www", "ucla", "edu")

    def test_trailing_dot_is_optional(self):
        assert Name.from_text("ucla.edu.") == Name.from_text("ucla.edu")

    def test_case_is_folded(self):
        assert Name.from_text("WWW.UCLA.EDU") == Name.from_text("www.ucla.edu")

    @pytest.mark.parametrize("text", ["", "."])
    def test_root_forms(self, text):
        assert Name.from_text(text) is root_name()

    @pytest.mark.parametrize("bad", ["a..b", ".leading", "sp ace.com", "a$.com"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(NameParseError):
            Name.from_text(bad)

    def test_rejects_oversized_label(self):
        with pytest.raises(NameParseError):
            Name.from_text("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_rejects_oversized_name(self):
        label = "a" * 60
        text = ".".join([label] * 5)
        with pytest.raises(NameParseError):
            Name.from_text(text)


class TestStructure:
    def test_parent_strips_leftmost(self):
        assert Name.from_text("www.ucla.edu").parent() == Name.from_text("ucla.edu")

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            root_name().parent()

    def test_child_prepends(self):
        assert Name.from_text("edu").child("ucla") == Name.from_text("ucla.edu")

    def test_child_rejects_bad_label(self):
        with pytest.raises(NameParseError):
            root_name().child("has space")

    def test_subdomain_relation(self):
        edu = Name.from_text("edu")
        ucla = Name.from_text("ucla.edu")
        assert ucla.is_subdomain_of(edu)
        assert ucla.is_subdomain_of(ucla)
        assert not edu.is_subdomain_of(ucla)
        assert ucla.is_subdomain_of(root_name())

    def test_suffix_label_match_is_not_subdomain(self):
        # myucla.edu is NOT under ucla.edu despite the string suffix.
        assert not Name.from_text("xucla.edu").is_subdomain_of(
            Name.from_text("ucla.edu")
        )

    def test_ancestors_order(self):
        chain = list(Name.from_text("www.cs.ucla.edu").ancestors())
        assert [str(n) for n in chain] == [
            "www.cs.ucla.edu.",
            "cs.ucla.edu.",
            "ucla.edu.",
            "edu.",
            ".",
        ]

    def test_common_ancestor(self):
        a = Name.from_text("www.cs.ucla.edu")
        b = Name.from_text("mail.ee.ucla.edu")
        assert a.common_ancestor(b) == Name.from_text("ucla.edu")

    def test_common_ancestor_disjoint_is_root(self):
        a = Name.from_text("a.com")
        b = Name.from_text("b.net")
        assert a.common_ancestor(b) is root_name()

    def test_depth_and_wire_length(self):
        assert root_name().depth() == 0
        assert root_name().wire_length() == 1
        name = Name.from_text("ab.cd")
        assert name.depth() == 2
        assert name.wire_length() == 1 + 3 + 3


class TestValueSemantics:
    def test_interning_gives_identity(self):
        assert Name.from_text("a.com") is Name.from_text("a.com")

    def test_hash_consistency(self):
        name = Name.from_text("x.org")
        assert hash(name) == hash(Name(("x", "org")))

    def test_ordering_is_by_reversed_labels(self):
        # Canonical DNS order sorts by rightmost label first.
        assert Name.from_text("a.com") < Name.from_text("b.com")
        assert Name.from_text("z.com") < Name.from_text("a.net")

    def test_str_roundtrip(self):
        text = "www.example.org."
        assert str(Name.from_text(text)) == text

    def test_immutability(self):
        name = Name.from_text("a.com")
        with pytest.raises(AttributeError):
            name.labels = ()


class TestProperties:
    @given(labels_strategy())
    def test_text_roundtrip(self, labels):
        name = Name(tuple(labels))
        assert Name.from_text(str(name)) == name

    @given(labels_strategy())
    def test_ancestors_are_subdomain_chain(self, labels):
        name = Name(tuple(labels))
        for ancestor in name.ancestors():
            assert name.is_subdomain_of(ancestor)

    @given(labels_strategy(), labels_strategy())
    def test_common_ancestor_is_ancestor_of_both(self, a_labels, b_labels):
        a, b = Name(tuple(a_labels)), Name(tuple(b_labels))
        ancestor = a.common_ancestor(b)
        assert a.is_subdomain_of(ancestor)
        assert b.is_subdomain_of(ancestor)

    @given(labels_strategy(), labels_strategy())
    def test_ordering_total_and_consistent(self, a_labels, b_labels):
        a, b = Name(tuple(a_labels)), Name(tuple(b_labels))
        assert (a < b) + (b < a) + (a == b) == 1

    @given(labels_strategy(), st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10))
    def test_child_parent_inverse(self, labels, label):
        name = Name(tuple(labels))
        assert name.child(label).parent() == name
