"""Tests for the simulated DNSSEC material and its IRR integration."""

import pytest

from repro.dns.dnssec import (
    chain_is_verifiable,
    make_dnskey_rrset,
    make_ds_rrset,
    sign_irrs,
)
from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType

from tests.helpers import _irrs, name


class TestMaterial:
    def test_dnskey_rrset_has_ksk_and_zsk(self):
        rrset = make_dnskey_rrset(name("x.test."), ttl=3600)
        assert rrset.rrtype is RRType.DNSKEY
        assert len(rrset) == 2
        values = " ".join(str(v) for v in rrset.data_values())
        assert "ksk-" in values and "zsk-" in values

    def test_ds_rrset(self):
        rrset = make_ds_rrset(name("x.test."), ttl=60)
        assert rrset.rrtype is RRType.DS
        assert rrset.ttl == 60

    def test_generations_differ(self):
        g0 = make_dnskey_rrset(name("x.test."), 60, generation=0)
        g1 = make_dnskey_rrset(name("x.test."), 60, generation=1)
        assert not g0.same_data(g1)


class TestSignIrrs:
    def test_sign_attaches_dnskey_and_ds(self):
        irrs = _irrs("x.test.", [("ns1.x.test.", "10.0.0.1")], 3600)
        signed = sign_irrs(irrs)
        assert signed.is_signed
        types = {rrset.rrtype for rrset in signed.dnssec}
        assert types == {RRType.DNSKEY, RRType.DS}
        assert not irrs.is_signed  # original untouched

    def test_dnssec_ttls_follow_ns(self):
        irrs = _irrs("x.test.", [("ns1.x.test.", "10.0.0.1")], 1234)
        signed = sign_irrs(irrs)
        assert all(rrset.ttl == 1234 for rrset in signed.dnssec)

    def test_with_ttl_covers_dnssec(self):
        signed = sign_irrs(_irrs("x.test.", [("ns1.x.test.", "10.0.0.1")], 60))
        longer = signed.with_ttl(86400)
        assert all(rrset.ttl == 86400 for rrset in longer.dnssec)

    def test_record_count_includes_dnssec(self):
        irrs = _irrs("x.test.", [("ns1.x.test.", "10.0.0.1")], 60)
        assert sign_irrs(irrs).record_count() == irrs.record_count() + 3

    def test_non_dnssec_rrset_rejected(self):
        irrs = _irrs("x.test.", [("ns1.x.test.", "10.0.0.1")], 60)
        bogus = RRset.from_records(
            [ResourceRecord(name("x.test."), RRType.TXT, 60, "nope")]
        )
        with pytest.raises(ValueError):
            InfrastructureRecordSet(irrs.zone, irrs.ns, irrs.glue, (bogus,))


class TestChainCheck:
    def test_verifiable_when_all_keys_present(self):
        signed = {name("test."), name("x.test.")}
        cached = {name("test."), name("x.test.")}
        assert chain_is_verifiable(cached, name("www.x.test."), signed)

    def test_broken_when_ancestor_key_missing(self):
        signed = {name("test."), name("x.test.")}
        cached = {name("x.test.")}
        assert not chain_is_verifiable(cached, name("www.x.test."), signed)

    def test_unsigned_zones_need_no_keys(self):
        assert chain_is_verifiable(set(), name("www.x.test."), set())
