"""Tests for DNS message classification."""

from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType


def ns_rrset(zone="example.test", ttl=3600):
    return RRset.from_records(
        [
            ResourceRecord(
                Name.from_text(zone), RRType.NS, ttl,
                Name.from_text(f"ns1.{zone}"),
            )
        ]
    )


def a_rrset(owner="www.example.test", ttl=300):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(owner), RRType.A, ttl, "10.9.9.9")]
    )


def question(name="www.example.test", rrtype=RRType.A):
    return Question(Name.from_text(name), rrtype)


class TestClassification:
    def test_referral_detection(self):
        message = Message(
            question=question(), authoritative=False, authority=(ns_rrset(),)
        )
        assert message.is_referral()
        assert not message.is_nodata()
        assert message.referral_zone() == Name.from_text("example.test")

    def test_authoritative_nodata_is_not_referral(self):
        # An authoritative NODATA carries the zone's NS in authority but
        # must be terminal (this was a real resolver-loop bug).
        message = Message(
            question=question(rrtype=RRType.MX),
            authoritative=True,
            authority=(ns_rrset(),),
        )
        assert not message.is_referral()
        assert message.is_nodata()

    def test_answer_is_neither_referral_nor_nodata(self):
        message = Message(
            question=question(),
            authoritative=True,
            answer=(a_rrset(),),
            authority=(ns_rrset(),),
        )
        assert not message.is_referral()
        assert not message.is_nodata()

    def test_nxdomain(self):
        message = Message(question=question(), rcode=Rcode.NXDOMAIN,
                          authoritative=True)
        assert message.is_name_error()
        assert not message.is_referral()

    def test_referral_zone_none_without_ns(self):
        message = Message(question=question())
        assert message.referral_zone() is None


class TestAccounting:
    def test_all_rrsets_order(self):
        answer, authority, additional = a_rrset(), ns_rrset(), a_rrset("ns1.example.test")
        message = Message(
            question=question(),
            answer=(answer,),
            authority=(authority,),
            additional=(additional,),
        )
        assert message.all_rrsets() == (answer, authority, additional)

    def test_record_count(self):
        message = Message(
            question=question(), answer=(a_rrset(),), authority=(ns_rrset(),)
        )
        assert message.record_count() == 2

    def test_message_ids_unique(self):
        first = Message(question=question())
        second = Message(question=question())
        assert first.message_id != second.message_id

    def test_str_rendering(self):
        message = Message(question=question(), answer=(a_rrset(),),
                          authoritative=True)
        text = str(message)
        assert "NOERROR" in text and "aa" in text and "10.9.9.9" in text
