"""Tests for zone data and the zone builder."""

import pytest

from repro.dns.errors import ZoneConfigError
from repro.dns.name import Name
from repro.dns.records import ResourceRecord
from repro.dns.rrtypes import RRType
from repro.dns.zone import ZoneBuilder

from tests.helpers import _irrs, name


def simple_zone():
    builder = ZoneBuilder(name("example.test."), default_ttl=3600)
    builder.add_ns("ns1.example.test.", "10.0.0.1")
    builder.add_ns("ns2.example.test.", "10.0.0.2")
    builder.add_address("www.example.test.", "10.0.0.10", ttl=300)
    builder.add_record(
        ResourceRecord(
            name("web.example.test."), RRType.CNAME, 300, name("www.example.test.")
        )
    )
    return builder


class TestZoneBuilder:
    def test_build_requires_ns(self):
        with pytest.raises(ZoneConfigError):
            ZoneBuilder(name("x.test.")).build()

    def test_in_bailiwick_ns_requires_glue(self):
        builder = ZoneBuilder(name("x.test."))
        with pytest.raises(ZoneConfigError):
            builder.add_ns("ns1.x.test.")

    def test_out_of_bailiwick_ns_without_glue_ok(self):
        builder = ZoneBuilder(name("x.test."))
        builder.add_ns("ns1.provider.test.")
        zone = builder.build()
        assert zone.infrastructure_records.glue == ()

    def test_add_ns_record_validates(self):
        builder = ZoneBuilder(name("x.test."))
        with pytest.raises(ZoneConfigError):
            builder.add_ns_record(
                ResourceRecord(name("y.test."), RRType.NS, 60, name("ns.y.test."))
            )

    def test_record_outside_bailiwick_rejected(self):
        builder = simple_zone()
        with pytest.raises(ZoneConfigError):
            builder.add_address("www.other.test.", "10.0.0.3")

    def test_record_inside_delegation_rejected(self):
        builder = simple_zone()
        builder.delegate(_irrs("child.example.test.", [("ns1.child.example.test.", "10.0.1.1")], 3600))
        builder.add_address("www.child.example.test.", "10.0.0.4")
        with pytest.raises(ZoneConfigError):
            builder.build()

    def test_duplicate_delegation_rejected(self):
        builder = simple_zone()
        irrs = _irrs("child.example.test.", [("ns1.child.example.test.", "10.0.1.1")], 3600)
        builder.delegate(irrs)
        with pytest.raises(ZoneConfigError):
            builder.delegate(irrs)

    def test_delegating_apex_rejected(self):
        builder = simple_zone()
        with pytest.raises(ZoneConfigError):
            builder.delegate(
                _irrs("example.test.", [("ns9.example.test.", "10.0.9.9")], 60)
            )


class TestZoneLookup:
    def test_apex_ns_served_from_irrs(self):
        zone = simple_zone().build()
        ns = zone.lookup(name("example.test."), RRType.NS)
        assert ns is not None
        assert len(ns) == 2

    def test_glue_lookup(self):
        zone = simple_zone().build()
        glue = zone.lookup(name("ns1.example.test."), RRType.A)
        assert glue is not None
        assert glue.data_values() == ("10.0.0.1",)

    def test_data_lookup(self):
        zone = simple_zone().build()
        rrset = zone.lookup(name("www.example.test."), RRType.A)
        assert rrset is not None
        assert rrset.ttl == 300

    def test_missing_type_returns_none(self):
        zone = simple_zone().build()
        assert zone.lookup(name("www.example.test."), RRType.MX) is None

    def test_name_exists_includes_cname_and_glue(self):
        zone = simple_zone().build()
        assert zone.name_exists(name("web.example.test."))
        assert zone.name_exists(name("ns1.example.test."))
        assert not zone.name_exists(name("nothere.example.test."))

    def test_delegation_covering(self):
        builder = simple_zone()
        child = _irrs("child.example.test.", [("ns1.child.example.test.", "10.0.1.1")], 3600)
        builder.delegate(child)
        zone = builder.build()
        found = zone.delegation_covering(name("deep.child.example.test."))
        assert found is not None and found.zone == name("child.example.test.")
        assert zone.delegation_covering(name("www.example.test.")) is None

    def test_record_count(self):
        zone = simple_zone().build()
        # 2 NS + 2 glue + www A + web CNAME
        assert zone.record_count() == 6


class TestZoneOperatorActions:
    def test_set_infrastructure_ttl_changes_only_irrs(self):
        zone = simple_zone().build()
        zone.set_infrastructure_ttl(86400 * 3)
        assert zone.infrastructure_records.ns.ttl == 86400 * 3
        data = zone.lookup(name("www.example.test."), RRType.A)
        assert data.ttl == 300  # data records untouched

    def test_infrastructure_sections_cache_invalidated(self):
        zone = simple_zone().build()
        before = zone.infrastructure_sections()
        zone.set_infrastructure_ttl(86400)
        after = zone.infrastructure_sections()
        assert before[0][0].ttl != after[0][0].ttl

    def test_set_delegation_ttl(self):
        builder = simple_zone()
        builder.delegate(
            _irrs("child.example.test.", [("ns1.child.example.test.", "10.0.1.1")], 3600)
        )
        zone = builder.build()
        zone.set_delegation_ttl(name("child.example.test."), 7200)
        delegation = zone.delegation_covering(name("child.example.test."))
        assert delegation.ns.ttl == 7200

    def test_replace_delegation(self):
        builder = simple_zone()
        builder.delegate(
            _irrs("child.example.test.", [("ns1.child.example.test.", "10.0.1.1")], 3600)
        )
        zone = builder.build()
        replacement = _irrs(
            "child.example.test.", [("ns9.child.example.test.", "10.0.9.9")], 3600
        )
        zone.replace_delegation(replacement)
        delegation = zone.delegation_covering(name("child.example.test."))
        assert str(delegation.server_names()[0]) == "ns9.child.example.test."

    def test_replace_unknown_delegation_raises(self):
        zone = simple_zone().build()
        with pytest.raises(KeyError):
            zone.replace_delegation(
                _irrs("ghost.example.test.", [("ns1.ghost.example.test.", "10.0.2.1")], 60)
            )

    def test_irr_snapshot_roundtrip(self):
        zone = simple_zone().build()
        snapshot = zone.irr_snapshot()
        zone.set_infrastructure_ttl(999999)
        zone.restore_irr_snapshot(snapshot)
        assert zone.infrastructure_records.ns.ttl == 3600
