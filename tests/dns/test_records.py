"""Tests for resource records, RRsets and IRR bundles."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType


def rr(name_text, rrtype, ttl, data):
    data_value = Name.from_text(data) if rrtype in (RRType.NS, RRType.CNAME) else data
    return ResourceRecord(Name.from_text(name_text), rrtype, ttl, data_value)


class TestResourceRecord:
    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            rr("a.com", RRType.A, -1, "1.2.3.4")

    def test_ns_requires_name_rdata(self):
        with pytest.raises(TypeError):
            ResourceRecord(Name.from_text("a.com"), RRType.NS, 60, "not-a-name")

    def test_with_ttl_copies(self):
        original = rr("a.com", RRType.A, 60, "1.2.3.4")
        longer = original.with_ttl(3600)
        assert longer.ttl == 3600
        assert original.ttl == 60
        assert longer.data == original.data

    def test_key(self):
        record = rr("a.com", RRType.A, 60, "1.2.3.4")
        assert record.key() == (Name.from_text("a.com"), RRType.A)

    def test_str_contains_fields(self):
        text = str(rr("a.com", RRType.A, 60, "1.2.3.4"))
        assert "a.com." in text and "A" in text and "1.2.3.4" in text


class TestRRset:
    def test_from_records_normalises_ttl_to_minimum(self):
        rrset = RRset.from_records(
            [rr("a.com", RRType.A, 300, "1.1.1.1"), rr("a.com", RRType.A, 60, "2.2.2.2")]
        )
        assert rrset.ttl == 60
        assert all(record.ttl == 60 for record in rrset)

    def test_from_records_sorts_canonically(self):
        rrset = RRset.from_records(
            [rr("a.com", RRType.A, 60, "9.9.9.9"), rr("a.com", RRType.A, 60, "1.1.1.1")]
        )
        assert rrset.data_values() == ("1.1.1.1", "9.9.9.9")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RRset.from_records([])

    def test_mixed_owner_rejected(self):
        with pytest.raises(ValueError):
            RRset(
                name=Name.from_text("a.com"),
                rrtype=RRType.A,
                ttl=60,
                records=(rr("b.com", RRType.A, 60, "1.1.1.1"),),
            )

    def test_same_data_ignores_ttl(self):
        one = RRset.from_records([rr("a.com", RRType.A, 60, "1.1.1.1")])
        two = RRset.from_records([rr("a.com", RRType.A, 999, "1.1.1.1")])
        assert one.same_data(two)

    def test_same_data_detects_change(self):
        one = RRset.from_records([rr("a.com", RRType.A, 60, "1.1.1.1")])
        two = RRset.from_records([rr("a.com", RRType.A, 60, "2.2.2.2")])
        assert not one.same_data(two)

    def test_with_ttl_restamps_members(self):
        rrset = RRset.from_records([rr("a.com", RRType.A, 60, "1.1.1.1")])
        assert all(record.ttl == 500 for record in rrset.with_ttl(500))

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=8))
    def test_ttl_is_always_minimum(self, ttls):
        records = [
            rr("a.com", RRType.A, ttl, f"10.0.0.{index}")
            for index, ttl in enumerate(ttls)
        ]
        assert RRset.from_records(records).ttl == min(ttls)


def make_irrs(ttl=3600.0, glue=True):
    zone = Name.from_text("example.test")
    ns = RRset.from_records(
        [
            rr("example.test", RRType.NS, ttl, "ns1.example.test"),
            rr("example.test", RRType.NS, ttl, "ns2.example.test"),
        ]
    )
    glue_sets = ()
    if glue:
        glue_sets = (
            RRset.from_records([rr("ns1.example.test", RRType.A, ttl, "10.0.0.1")]),
            RRset.from_records([rr("ns2.example.test", RRType.A, ttl, "10.0.0.2")]),
        )
    return InfrastructureRecordSet(zone, ns, glue_sets)


class TestInfrastructureRecordSet:
    def test_server_names(self):
        irrs = make_irrs()
        assert set(map(str, irrs.server_names())) == {
            "ns1.example.test.",
            "ns2.example.test.",
        }

    def test_glue_lookup(self):
        irrs = make_irrs()
        glue = irrs.glue_for(Name.from_text("ns1.example.test"))
        assert glue is not None
        assert glue.data_values() == ("10.0.0.1",)
        assert irrs.glue_for(Name.from_text("missing.example.test")) is None

    def test_record_count(self):
        assert make_irrs().record_count() == 4
        assert make_irrs(glue=False).record_count() == 2

    def test_min_ttl(self):
        assert make_irrs(ttl=1234).min_ttl() == 1234

    def test_with_ttl_applies_everywhere(self):
        longer = make_irrs(ttl=60).with_ttl(86400)
        assert longer.ns.ttl == 86400
        assert all(g.ttl == 86400 for g in longer.glue)

    def test_requires_ns_rrset(self):
        a_set = RRset.from_records([rr("x.test", RRType.A, 60, "1.1.1.1")])
        with pytest.raises(ValueError):
            InfrastructureRecordSet(Name.from_text("x.test"), a_set)

    def test_rejects_mismatched_zone(self):
        irrs = make_irrs()
        with pytest.raises(ValueError):
            InfrastructureRecordSet(Name.from_text("other.test"), irrs.ns)

    def test_rejects_non_address_glue(self):
        irrs = make_irrs()
        bad_glue = RRset.from_records(
            [rr("ns1.example.test", RRType.NS, 60, "x.test")]
        )
        with pytest.raises(ValueError):
            InfrastructureRecordSet(irrs.zone, irrs.ns, (bad_glue,))
