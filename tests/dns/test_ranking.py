"""Tests for RFC 2181 trust ranking."""

import pytest

from repro.dns.ranking import Rank, section_rank


class TestRankOrdering:
    def test_full_order(self):
        assert (
            Rank.ADDITIONAL
            < Rank.NON_AUTH_AUTHORITY
            < Rank.AUTH_AUTHORITY
            < Rank.AUTH_ANSWER
        )

    def test_higher_rank_may_replace_lower(self):
        assert Rank.AUTH_AUTHORITY.may_replace(Rank.NON_AUTH_AUTHORITY)

    def test_equal_rank_may_replace(self):
        assert Rank.AUTH_ANSWER.may_replace(Rank.AUTH_ANSWER)

    def test_lower_rank_may_not_replace(self):
        assert not Rank.ADDITIONAL.may_replace(Rank.AUTH_AUTHORITY)


class TestSectionRank:
    @pytest.mark.parametrize(
        "section,authoritative,expected",
        [
            ("answer", True, Rank.AUTH_ANSWER),
            ("answer", False, Rank.NON_AUTH_AUTHORITY),
            ("authority", True, Rank.AUTH_AUTHORITY),
            ("authority", False, Rank.NON_AUTH_AUTHORITY),
            ("additional", True, Rank.AUTH_AUTHORITY),
            ("additional", False, Rank.ADDITIONAL),
        ],
    )
    def test_matrix(self, section, authoritative, expected):
        assert section_rank(section, authoritative) == expected

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            section_rank("extra", True)

    def test_child_outranks_parent_copy(self):
        # The paper's RFC 2181 rule: child-side IRRs replace parent-side.
        parent = section_rank("authority", authoritative=False)
        child = section_rank("authority", authoritative=True)
        assert child.may_replace(parent)
        assert not parent.may_replace(child)
