"""The name intern table: the foundation under every packed cache key.

Every hot path keys on ``(name.iid << RRTYPE_BITS) | rrtype`` instead of
``(Name, RRType)`` tuples, so three properties are load-bearing:

* ids are *deterministic* — the same build sequence hands out the same
  ids in every process (what makes forked-worker replays byte-identical
  to serial ones);
* ids are *stable* — zone churn (delegation swaps, TTL rewrites) never
  reassigns an existing name's id;
* packed keys built from ids agree with the canonical ``cache_key``
  helper, whatever order the names were interned in.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.core.cache import cache_key, split_key
from repro.dns.name import Name, name_for_id
from repro.dns.rrtypes import RRTYPE_BITS, RRType
from repro.experiments.scenarios import Scale, make_scenario

SRC = str(Path(__file__).resolve().parents[2] / "src")

_DUMP_IDS = """
import json, sys
from repro.experiments.scenarios import Scale, make_scenario
from repro.dns.name import Name

order = sys.argv[1]
if order == "traces-first":
    # Interning a few query names before the hierarchy exists shifts
    # every later id, but must do so identically in every process that
    # runs this same sequence.
    for text in ("early.example.com.", "zzz.test.", "a.b.c.d.e."):
        Name.from_text(text)
scenario = make_scenario(Scale.TINY, seed=7)
names = {}
for zone in scenario.built.tree.zone_names():
    names[str(zone)] = zone.iid
json.dump(names, sys.stdout)
"""


def _subprocess_ids(order: str) -> dict[str, int]:
    env = dict(os.environ, PYTHONPATH=SRC)
    out = subprocess.run(
        [sys.executable, "-c", _DUMP_IDS, order],
        capture_output=True, text=True, env=env, check=True,
    )
    import json

    return json.loads(out.stdout)


class TestInternDeterminism:
    def test_same_build_sequence_same_ids_across_processes(self):
        first = _subprocess_ids("hierarchy-first")
        second = _subprocess_ids("hierarchy-first")
        assert first == second

    def test_build_order_shifts_ids_but_not_identity(self):
        """Different intern orders renumber names; lookups stay coherent.

        This is why worker determinism holds: a worker's ids may differ
        from the parent's under ``spawn``, but all of a process's packed
        keys are built from its *own* table, so results match anyway.
        """
        plain = _subprocess_ids("hierarchy-first")
        shifted = _subprocess_ids("traces-first")
        assert set(plain) == set(shifted)  # same zones either way
        # ids are a permutation-free dense prefix: distinct per name.
        assert len(set(plain.values())) == len(plain)
        assert len(set(shifted.values())) == len(shifted)

    def test_round_trip_through_the_registry(self):
        name = Name.from_text("round.trip.example.")
        assert name_for_id(name.iid) is name
        assert Name.from_text("round.trip.example.") is name


class TestIdStabilityUnderChurn:
    def test_zone_churn_never_reassigns_ids(self):
        scenario = make_scenario(Scale.TINY, seed=7)
        tree = scenario.built.tree
        zones = list(tree.zone_names())
        before = {str(zone): zone.iid for zone in zones}

        # Churn: rewrite infrastructure and delegation TTLs on every
        # zone the hierarchy exposes.
        for zone_name in zones:
            zone = tree.zone(zone_name)
            zone.set_infrastructure_ttl(321.0)
            for child in zone.child_zone_names():
                zone.set_delegation_ttl(child, 123.0)

        after = {str(zone): zone.iid for zone in tree.zone_names()}
        assert after == before
        for zone in tree.zone_names():
            assert name_for_id(zone.iid) is zone

    def test_new_names_extend_rather_than_recycle(self):
        anchor = Name.from_text("anchor.example.")
        fresh = Name.from_text(f"fresh-{anchor.iid}.example.")
        assert fresh.iid != anchor.iid
        assert name_for_id(anchor.iid) is anchor


class TestPackedKeys:
    def test_cache_key_matches_manual_packing(self):
        name = Name.from_text("packed.example.")
        for rrtype in (RRType.A, RRType.NS, RRType.DNSKEY):
            key = cache_key(name, rrtype)
            assert key == (name.iid << RRTYPE_BITS) | int(rrtype)
            assert split_key(key) == (name, rrtype)

    def test_ns_chain_keys_agree_with_cache_key(self):
        name = Name.from_text("www.deep.example.com.")
        for ancestor, packed in name.ns_chain():
            assert packed == cache_key(ancestor, RRType.NS)
