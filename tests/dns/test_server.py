"""Tests for the authoritative server answering algorithm."""

import pytest

from repro.dns.errors import LameDelegationError
from repro.dns.message import Question, Rcode
from repro.dns.rrtypes import RRType

from tests.helpers import build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


def server_for(mini, hostname):
    server = mini.tree.server_by_name(name(hostname))
    assert server is not None
    return server


class TestReferrals:
    def test_root_refers_to_tld(self, mini):
        root = server_for(mini, "a.root.")
        response = root.respond(Question(name("www.example.test."), RRType.A))
        assert response.is_referral()
        assert not response.authoritative
        assert response.referral_zone() == name("test.")
        # Referral carries glue for the TLD servers.
        glue_owners = {str(rrset.name) for rrset in response.additional}
        assert glue_owners == {"ns1.test.", "ns2.test."}

    def test_tld_refers_to_sld(self, mini):
        tld = server_for(mini, "ns1.test.")
        response = tld.respond(Question(name("www.example.test."), RRType.A))
        assert response.is_referral()
        assert response.referral_zone() == name("example.test.")

    def test_referral_for_glueless_delegation_has_no_additional(self, mini):
        tld = server_for(mini, "ns1.test.")
        response = tld.respond(Question(name("www.hosted.test."), RRType.A))
        assert response.is_referral()
        assert response.additional == ()


class TestAuthoritativeAnswers:
    def test_answer_with_irrs_in_authority(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        response = sld.respond(Question(name("www.example.test."), RRType.A))
        assert response.authoritative
        assert response.answer
        # The refresh vehicle: the zone's own NS in authority + glue.
        assert any(r.rrtype == RRType.NS for r in response.authority)
        assert response.additional  # glue for ns1/ns2

    def test_cname_chased_within_zone(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        response = sld.respond(Question(name("web.example.test."), RRType.A))
        types = [rrset.rrtype for rrset in response.answer]
        assert RRType.CNAME in types and RRType.A in types

    def test_nodata_for_missing_type(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        response = sld.respond(Question(name("www.example.test."), RRType.MX))
        assert response.rcode == Rcode.NOERROR
        assert response.is_nodata()
        assert response.authoritative

    def test_nxdomain_for_missing_name(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        response = sld.respond(Question(name("ghost.example.test."), RRType.A))
        assert response.rcode == Rcode.NXDOMAIN

    def test_apex_ns_answered_authoritatively_by_child(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        response = sld.respond(Question(name("example.test."), RRType.NS))
        assert response.authoritative
        assert response.answer[0].rrtype == RRType.NS

    def test_deepest_zone_selected_when_hosting_parent_and_child(self, mini):
        # example.test.'s servers also serve dept.example.test.
        server = server_for(mini, "ns1.example.test.")
        response = server.respond(
            Question(name("www.dept.example.test."), RRType.A)
        )
        assert response.authoritative
        assert response.answer

    def test_provider_server_answers_for_hosted_customer(self, mini):
        provider = server_for(mini, "ns1.provider.test.")
        response = provider.respond(Question(name("www.hosted.test."), RRType.A))
        assert response.authoritative
        assert response.answer


class TestLameness:
    def test_lame_query_raises(self, mini):
        sld = server_for(mini, "ns1.example.test.")
        with pytest.raises(LameDelegationError):
            sld.respond(Question(name("www.unrelated.alt."), RRType.A))

    def test_zones_served_listing(self, mini):
        provider = server_for(mini, "ns1.provider.test.")
        served = {str(zone) for zone in provider.zones_served()}
        assert served == {"provider.test.", "hosted.test."}

    def test_is_authoritative_for(self, mini):
        root = server_for(mini, "a.root.")
        assert root.is_authoritative_for(name("."))
        assert not root.is_authoritative_for(name("test."))


class TestResponseCache:
    """Responses are pure functions of (question, zone content), so the
    zone memoises them — and must forget them on every operator action."""

    def test_repeat_question_returns_identical_object(self, mini):
        root = server_for(mini, "a.root.")
        question = Question(name("www.example.test."), RRType.A)
        first = root.respond(question)
        second = root.respond(question)
        assert second is first

    def test_shared_across_servers_hosting_the_zone(self, mini):
        question = Question(name("www.example.test."), RRType.A)
        a_response = server_for(mini, "a.root.").respond(question)
        b_response = server_for(mini, "b.root.").respond(question)
        assert b_response is a_response

    def test_set_infrastructure_ttl_invalidates(self, mini):
        tld = server_for(mini, "ns1.test.")
        question = Question(name("example.test."), RRType.NS)
        before = tld.respond(question)
        mini.tree.zone(name("test.")).set_infrastructure_ttl(42.0)
        after = tld.respond(question)
        assert after is not before

    def test_set_delegation_ttl_invalidates_and_changes_answer(self, mini):
        tld = server_for(mini, "ns1.test.")
        question = Question(name("www.example.test."), RRType.A)
        before = tld.respond(question)
        mini.tree.zone(name("test.")).set_delegation_ttl(
            name("example.test."), 17.0
        )
        after = tld.respond(question)
        assert after is not before
        ns_ttls = {rrset.ttl for rrset in after.authority
                   if rrset.rrtype == RRType.NS}
        assert ns_ttls == {17.0}
