"""Tests for zone-file parsing and serialisation."""

import pytest

from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.dns.zonefile import (
    ZoneFileError,
    dump_zone,
    load_zone,
    load_zone_file,
    parse_zone_text,
    records_to_text,
)

from tests.helpers import name

EXAMPLE_ZONE = """\
$ORIGIN example.test.
$TTL 3600
@       IN NS ns1.example.test.
@       IN NS ns2.example.test.
ns1     IN A 10.0.0.1
ns2     IN A 10.0.0.2
www 300 IN A 10.0.0.10
        IN AAAA fd00::10
web     IN CNAME www
mail    IN MX 10 www.example.test.
txt     IN TXT "hello world"
; a delegated child with glue
child      IN NS ns1.child.example.test.
ns1.child  IN A 10.0.1.1
"""


class TestParsing:
    def test_full_zone_parses(self):
        records = parse_zone_text(EXAMPLE_ZONE)
        assert len(records) == 11

    def test_origin_and_relative_names(self):
        records = parse_zone_text(EXAMPLE_ZONE)
        owners = {str(record.name) for record in records}
        assert "www.example.test." in owners
        assert "example.test." in owners

    def test_blank_owner_inherits(self):
        records = parse_zone_text(EXAMPLE_ZONE)
        aaaa = [r for r in records if r.rrtype is RRType.AAAA]
        assert aaaa[0].name == name("www.example.test.")

    def test_per_record_ttl_overrides_default(self):
        records = parse_zone_text(EXAMPLE_ZONE)
        www = [r for r in records
               if r.name == name("www.example.test.") and r.rrtype is RRType.A]
        assert www[0].ttl == 300
        ns = [r for r in records if r.rrtype is RRType.NS][0]
        assert ns.ttl == 3600

    def test_external_origin_argument(self):
        records = parse_zone_text("www IN A 1.2.3.4", origin="other.test.")
        assert records[0].name == name("www.other.test.")

    def test_comments_and_blank_lines_ignored(self):
        text = "; leading comment\n\nwww.x.test. 60 IN A 1.1.1.1 ; trailing\n"
        assert len(parse_zone_text(text)) == 1

    @pytest.mark.parametrize("bad,fragment", [
        ("$ORIGIN", "one argument"),
        ("$TTL abc", "bad TTL"),
        ("$INCLUDE other.zone", "unsupported directive"),
        ("www.x.test. IN A 1.2.3.4 (", "multi-line"),
        ("www.x.test. IN SRV 0 0 80 x.test.", "unsupported type"),
        ("www.x.test. CH A 1.2.3.4", "class IN"),
        ("www.x.test. IN CNAME a. b.", "one target"),
        ("www.x.test. IN MX ten www.x.test.", "priority"),
        ("relative IN A 1.2.3.4", "without"),
        ("  IN A 1.2.3.4", "previous owner"),
    ])
    def test_malformed_inputs_rejected(self, bad, fragment):
        with pytest.raises(ZoneFileError, match=fragment):
            parse_zone_text(bad)

    def test_line_numbers_reported(self):
        text = "www.x.test. IN A 1.1.1.1\nbroken line here\n"
        with pytest.raises(ZoneFileError, match="line 2"):
            parse_zone_text(text)


class TestLoadZone:
    def test_zone_serves_data(self):
        zone = load_zone(EXAMPLE_ZONE, origin="example.test.")
        assert zone.lookup(name("www.example.test."), RRType.A) is not None
        assert zone.lookup(name("web.example.test."), RRType.CNAME) is not None

    def test_apex_irrs_with_glue(self):
        zone = load_zone(EXAMPLE_ZONE, origin="example.test.")
        irrs = zone.infrastructure_records
        assert len(irrs.server_names()) == 2
        assert irrs.glue_for(name("ns1.example.test.")) is not None

    def test_delegation_extracted(self):
        zone = load_zone(EXAMPLE_ZONE, origin="example.test.")
        delegation = zone.delegation_covering(name("x.child.example.test."))
        assert delegation is not None
        assert delegation.zone == name("child.example.test.")
        assert delegation.glue_for(name("ns1.child.example.test.")) is not None

    def test_missing_apex_ns_rejected(self):
        with pytest.raises(Exception, match="no apex NS"):
            load_zone("www IN A 1.1.1.1", origin="x.test.")

    def test_dnssec_records_become_irrs(self):
        text = (
            "$ORIGIN s.test.\n"
            "@ IN NS ns1.s.test.\n"
            "ns1 IN A 10.0.0.9\n"
            "@ IN DNSKEY ksk-token\n"
            "@ IN DS ds-token\n"
        )
        zone = load_zone(text, origin="s.test.")
        assert zone.infrastructure_records.is_signed
        assert zone.lookup(name("s.test."), RRType.DNSKEY) is not None

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "example.zone"
        path.write_text(EXAMPLE_ZONE, encoding="ascii")
        zone = load_zone_file(path, origin="example.test.")
        assert zone.name == name("example.test.")


class TestRoundTrip:
    def test_dump_and_reload(self):
        zone = load_zone(EXAMPLE_ZONE, origin="example.test.")
        text = dump_zone(zone)
        reloaded = load_zone(text, origin="example.test.")
        assert reloaded.record_count() == zone.record_count()
        assert reloaded.lookup(name("www.example.test."), RRType.A) is not None
        assert reloaded.delegation_covering(name("child.example.test.")) is not None

    def test_mini_internet_zones_roundtrip(self):
        from tests.helpers import build_mini_internet
        mini = build_mini_internet()
        for zone_name in ("example.test.", "test.", "provider.test."):
            zone = mini.tree.zone(name(zone_name))
            text = dump_zone(zone)
            reloaded = load_zone(text, origin=zone_name)
            assert reloaded.record_count() == zone.record_count(), zone_name

    def test_records_to_text(self):
        records = parse_zone_text("www.x.test. 60 IN A 1.1.1.1")
        assert "www.x.test. 60 IN A 1.1.1.1" in records_to_text(records)
