"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_scheme
from repro.core.policies import AdaptiveLFUPolicy, LRUPolicy


class TestParseScheme:
    def test_named_schemes(self):
        assert parse_scheme("vanilla").label == "vanilla"
        assert parse_scheme("refresh").ttl_refresh
        assert parse_scheme("serve-stale").serve_stale
        combo = parse_scheme("combination")
        assert combo.ttl_refresh and combo.long_ttl is not None

    def test_policy_schemes(self):
        config = parse_scheme("a-lfu:5")
        policy = config.make_renewal_policy()
        assert isinstance(policy, AdaptiveLFUPolicy)
        assert policy.credit == 5
        assert isinstance(parse_scheme("LRU:3").make_renewal_policy(), LRUPolicy)

    def test_long_ttl(self):
        assert parse_scheme("long-ttl:7").long_ttl == 7 * 86400.0

    @pytest.mark.parametrize("bad", ["mru:3", "a-lfu:x", "bogus", "long-ttl:"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_scheme(bad)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "figures" in out

    def test_replay_no_attack(self, capsys):
        code = main(["replay", "--scale", "tiny", "--scheme", "refresh",
                     "--attack-hours", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall SR failures" in out

    def test_replay_with_attack(self, capsys):
        code = main(["replay", "--scale", "tiny", "--scheme", "vanilla"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SR failures" in out and "CS failures" in out

    def test_replay_bad_scheme_exits_2(self, capsys):
        assert main(["replay", "--scheme", "bogus", "--scale", "tiny"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_with_defenses(self, capsys):
        code = main(["replay", "--scale", "tiny", "--scheme", "vanilla",
                     "--fetch-budget", "8", "--nxns-cap", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fetch-budget(8)" in out and "nxns-cap(4)" in out

    def test_replay_negative_defense_exits_2(self, capsys):
        assert main(["replay", "--scale", "tiny",
                     "--fetch-budget", "-1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_table_1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_figure_number(self, capsys):
        assert main(["figure", "99", "--scale", "tiny"]) == 2

    def test_figure_3(self, capsys):
        assert main(["figure", "3", "--scale", "tiny", "--traces", "1"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "cli.trace"
        assert main(["trace", "generate", "--out", str(out_file),
                     "--days", "1", "--scale", "tiny"]) == 0
        assert out_file.exists()
        assert main(["trace", "stats", str(out_file)]) == 0
        assert "requests in" in capsys.readouterr().out

    def test_trace_stats_missing_file(self, capsys):
        assert main(["trace", "stats", "/nonexistent/file.trace"]) == 2

    def test_parser_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_maxdamage(self, capsys):
        assert main(["maxdamage", "--scale", "tiny", "--budget", "3"]) == 0
        assert "budget = 3" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "--scale", "tiny"]) == 0
        assert "Response time" in capsys.readouterr().out

    def test_bench_smoke(self, capsys):
        assert main(["bench", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bitwise-identical" in out

    def test_info_lists_registry_experiments(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("churn", "latency", "dnssec", "maxdamage",
                     "attack-grid", "multiseed"):
            assert name in out

    def test_registry_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["attack-grid", "--scheme", "refresh",
                                  "--durations-hours", "3,6"])
        assert args.scheme == "refresh"
        args = parser.parse_args(["churn", "--churn-fraction", "0.4"])
        assert args.churn_fraction == 0.4


class TestObservabilityCommands:
    def test_replay_writes_events_and_metrics(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(["replay", "--scale", "tiny", "--attack-hours", "1",
                     "--events", str(events), "--metrics", str(metrics),
                     "--timings"])
        assert code == 0
        out = capsys.readouterr().out
        assert "events emitted" in out
        assert "wall (s)" in out
        lines = events.read_text(encoding="utf-8").splitlines()
        assert lines and all(line.startswith('{"') for line in lines)
        assert "repro_events_total" in metrics.read_text(encoding="utf-8")

    def test_replay_events_deterministic(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["replay", "--scale", "tiny", "--attack-hours", "1",
                         "--events", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_events_subcommand(self, tmp_path, capsys):
        out_file = tmp_path / "tail.jsonl"
        code = main(["events", "--scale", "tiny", "--attack-hours", "1",
                     "--last", "5", "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "stub.query" in out
        assert "last 5 events" in out
        assert out_file.exists()
