"""Each invariant must fire on a tampered model and name its check id."""

import pytest

from repro.core.cache import DnsCache
from repro.core.policies import LRUPolicy
from repro.core.renewal import RenewalManager
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.rrtypes import RRType
from repro.simulation.engine import SimulationEngine
from repro.validation.errors import InvariantViolation
from repro.validation.fuzz import make_rrset
from repro.validation.invariants import (
    check_cache_invariants,
    check_renewal_invariants,
)

ZONE = Name.from_text("x.test.")


def seeded_cache(**kwargs):
    cache = DnsCache(**kwargs)
    cache.put(make_rrset("x.test.", RRType.NS, 100.0, "ns1.x.test."),
              Rank.AUTH_AUTHORITY, 0.0)
    cache.put(make_rrset("www.x.test.", RRType.A, 30.0, "10.0.0.1"),
              Rank.AUTH_ANSWER, 0.0)
    return cache


def manager_rig(credit=2.0, refetch=lambda zone, now: True):
    engine = SimulationEngine()
    cache = DnsCache()
    manager = RenewalManager(LRUPolicy(credit=credit), engine, cache, refetch)
    return engine, cache, manager


class TestCacheInvariants:
    def test_clean_cache_passes(self):
        check_cache_invariants(seeded_cache(), now=10.0)
        check_cache_invariants(seeded_cache(max_entries=4), now=50.0)

    def test_negative_published_ttl_flagged(self):
        cache = seeded_cache()
        cache.entry(ZONE, RRType.NS).published_ttl = -1.0
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=1.0)
        assert excinfo.value.check == "cache-entry-sanity"

    def test_overlong_lifetime_flagged(self):
        cache = seeded_cache(max_effective_ttl=50.0)
        # An entry living past min(published_ttl, cap) is corrupt.
        cache.entry(ZONE, RRType.NS).expires_at = 500.0
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=1.0)
        assert excinfo.value.check == "cache-entry-sanity"

    def test_capacity_overflow_flagged(self):
        cache = seeded_cache(max_entries=2)
        rogue = make_rrset("rogue.test.", RRType.A, 10.0, "10.0.0.9")
        from repro.core.cache import CacheEntry
        cache._entries[rogue.ikey()] = CacheEntry(  # repro: ignore[REP008]
            rrset=rogue, rank=Rank.AUTH_ANSWER, stored_at=0.0,
            expires_at=10.0, published_ttl=10.0,
        )
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=1.0)
        assert excinfo.value.check == "cache-capacity"

    def test_counter_drift_flagged(self):
        cache = seeded_cache()
        assert cache.live_entry_count(1.0) == 2  # switch counting on
        cache._live_entries += 1  # simulate bookkeeping drift
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=1.0)
        assert excinfo.value.check == "cache-live-counts"


class TestTaintInvariants:
    FORGED = Name.from_text("victim.x.test.")

    def poisoned_cache(self, **kwargs):
        cache = seeded_cache(**kwargs)
        cache.put(make_rrset("victim.x.test.", RRType.A, 60.0, "10.0.0.2"),
                  Rank.AUTH_ANSWER, 0.0)
        cache.put(make_rrset("victim.x.test.", RRType.A, 60.0,
                             "198.51.100.66"),
                  Rank.AUTH_ANSWER, 1.0, taint=True)
        return cache

    def taint_key(self, cache):
        (key,) = cache.tainted_entries().keys()
        return key

    def test_clean_poisoned_cache_passes(self):
        check_cache_invariants(self.poisoned_cache(), now=2.0)

    def test_flag_registry_disagreement_flagged(self):
        cache = self.poisoned_cache()
        # Clear the per-entry flag but leave the registry row behind.
        cache.entry(self.FORGED, RRType.A).tainted = False
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=2.0)
        assert excinfo.value.check == "cache-taint-accounting"

    def test_registered_rank_mismatch_flagged(self):
        cache = self.poisoned_cache()
        key = self.taint_key(cache)
        taint_time, _rank, displaced = cache._tainted[key]
        cache._tainted[key] = (taint_time, Rank.ADDITIONAL, displaced)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=2.0)
        assert excinfo.value.check == "cache-taint-accounting"

    def test_stored_before_taint_time_flagged(self):
        cache = self.poisoned_cache()
        key = self.taint_key(cache)
        _taint_time, rank, displaced = cache._tainted[key]
        cache._tainted[key] = (500.0, rank, displaced)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=2.0)
        assert excinfo.value.check == "cache-taint-accounting"

    def test_silent_rank_displacement_flagged(self):
        # Seed a forged entry of authority rank at a fresh name, then
        # claim it displaced live answer-rank data — a displacement RFC
        # 2181 ranking can never have allowed.
        cache = seeded_cache()
        cache.put(make_rrset("victim.x.test.", RRType.A, 60.0,
                             "198.51.100.66"),
                  Rank.AUTH_AUTHORITY, 1.0, taint=True)
        key = self.taint_key(cache)
        taint_time, rank, _displaced = cache._tainted[key]
        cache._tainted[key] = (taint_time, rank, Rank.AUTH_ANSWER)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=2.0)
        assert excinfo.value.check == "cache-taint-rank"

    def test_hardened_equal_rank_displacement_flagged(self):
        # Under hardened ingestion the equal-rank displacement is refused
        # at put time, so seed the forged entry at a fresh name (stored
        # with nothing displaced) and corrupt the registry afterwards.
        cache = seeded_cache(harden_ranking=True)
        cache.put(make_rrset("victim.x.test.", RRType.A, 60.0,
                             "198.51.100.66"),
                  Rank.AUTH_ANSWER, 1.0, taint=True)
        key = self.taint_key(cache)
        taint_time, rank, _displaced = cache._tainted[key]
        # Equal-rank displacement of live data is exactly what hardened
        # ingestion forbids; a registry row recording one is corrupt.
        cache._tainted[key] = (taint_time, rank, rank)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_invariants(cache, now=2.0)
        assert excinfo.value.check == "cache-taint-rank"


class TestRenewalInvariants:
    def test_clean_manager_passes(self):
        engine, cache, manager = manager_rig()
        ns = make_rrset("x.test.", RRType.NS, 100.0, "ns1.x.test.")
        result = cache.put(ns, Rank.AUTH_AUTHORITY, 0.0)
        manager.note_zone_use(ZONE, 100.0, 0.0)
        manager.note_irrs_cached(ZONE, result.expires_at)
        check_renewal_invariants(manager, cache, now=1.0)

    def test_armed_timer_on_dead_zone_flagged(self):
        engine, cache, manager = manager_rig()
        ns = make_rrset("x.test.", RRType.NS, 100.0, "ns1.x.test.")
        result = cache.put(ns, Rank.AUTH_AUTHORITY, 0.0)
        manager.note_irrs_cached(ZONE, result.expires_at)
        cache.remove(ZONE, RRType.NS)
        with pytest.raises(InvariantViolation) as excinfo:
            check_renewal_invariants(manager, cache, now=1.0)
        assert excinfo.value.check == "renewal-armed-live"

    def test_negative_credit_flagged(self):
        engine, cache, manager = manager_rig()
        manager.policy._credits[ZONE.iid] = -0.5
        with pytest.raises(InvariantViolation) as excinfo:
            check_renewal_invariants(manager, cache, now=1.0)
        assert excinfo.value.check == "renewal-credit-sign"

    def test_orphaned_credit_flagged(self):
        engine, cache, manager = manager_rig()
        # Credit with no timer and no live NS: the silent-drop signature.
        manager.note_zone_use(ZONE, 100.0, 0.0)
        with pytest.raises(InvariantViolation) as excinfo:
            check_renewal_invariants(manager, cache, now=1.0)
        assert excinfo.value.check == "renewal-orphan-credit"

    def test_orphaned_credit_allowed_under_serve_stale(self):
        engine, cache, manager = manager_rig()
        manager.note_zone_use(ZONE, 100.0, 0.0)
        check_renewal_invariants(manager, cache, now=1.0,
                                 allow_stale_credit=True)

    def test_accounting_identity_flagged(self):
        engine, cache, manager = manager_rig()
        # A code path that bumps attempts but records neither outcome
        # (e.g. a forgotten renewals_failed update) breaks the identity.
        manager.renewals_attempted = 1
        with pytest.raises(InvariantViolation) as excinfo:
            check_renewal_invariants(manager, cache, now=1.0)
        assert excinfo.value.check == "renewal-accounting"
