"""Interned int keys vs the Name-keyed oracle, in lockstep.

The production :class:`DnsCache` indexes everything by packed int keys
derived from intern ids; the :class:`OracleCache` deliberately keys on
``(Name, RRType)`` tuples.  Driving both through the fuzz corpus proves
the int-keyed fast paths (identity no-op puts, in-place refresh,
``get_chain``) never disagree with the naive semantics — and that the
primary cache really is running on ints, not quietly falling back.
"""

from repro.core.cache import cache_key
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.rrtypes import RRType
from repro.validation.differential import DifferentialCache
from repro.validation.fuzz import FuzzReport, apply_ops, make_rrset, run_fuzz


class TestInternedLockstep:
    def test_fuzz_corpus_green_under_differential_cache(self):
        """A healthy run means every op compared equal on both caches."""
        report = run_fuzz(rounds=25, seed=19, ops_per_round=120)
        assert report == FuzzReport(rounds=25, ops=3000, seed=19)

    def test_primary_cache_is_int_keyed(self):
        cache = DifferentialCache()
        ops = []
        for index in range(60):
            now = float(index)
            ops.append(("put", f"host{index % 7}.example.", RRType.A, 300.0,
                        Rank.AUTH_ANSWER, now, False,
                        f"192.0.2.{index % 250}"))
            ops.append(("get", f"host{index % 7}.example.", RRType.A, now))
            ops.append(("check", now))
        apply_ops(cache, ops)

        entries = cache._entries  # repro: ignore[REP008] — shape assertion
        assert entries, "ops populated nothing"
        for key, entry in entries.items():
            assert isinstance(key, int)
            assert key == cache_key(entry.rrset.name, entry.rrset.rrtype)
            # The oracle resolves the same logical key through Names.
            oracle_entry = cache.oracle.entry(entry.rrset.name,
                                              entry.rrset.rrtype)
            assert oracle_entry is not None
            assert oracle_entry.rrset == entry.rrset

    def test_refresh_fast_path_stays_in_lockstep(self):
        """Re-putting the identical rrset with refresh exercises the
        in-place fast path; the oracle must see the same expiry math."""
        cache = DifferentialCache()
        rrset = make_rrset("fast.example.", RRType.NS, 600.0,
                           "ns1.fast.example.")
        name = Name.from_text("fast.example.")
        cache.put(rrset, Rank.AUTH_AUTHORITY, 0.0)
        for step in range(1, 6):
            now = step * 100.0
            cache.put(rrset, Rank.AUTH_AUTHORITY, now, refresh=True)
            assert cache.get(name, RRType.NS, now) is rrset
            entry = cache.entry(name, RRType.NS)
            assert entry is not None and entry.stored_at == now

    def test_identity_noop_put_stays_in_lockstep(self):
        """The memoised no-op PutResult must match the oracle's verdict
        on every repeat."""
        cache = DifferentialCache()
        rrset = make_rrset("noop.example.", RRType.A, 900.0, "192.0.2.9")
        name = Name.from_text("noop.example.")
        first = cache.put(rrset, Rank.AUTH_ANSWER, 0.0)
        assert first.stored
        for step in range(1, 6):
            result = cache.put(rrset, Rank.AUTH_ANSWER, float(step))
            assert not result.stored
            assert cache.get(name, RRType.A, float(step)) is rrset
