"""Validated replays: the shadow oracle must not perturb results."""

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.scenarios import Scale, make_scenario
from repro.obs import ObservationSpec

HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestValidatedReplay:
    def test_validated_replay_matches_plain(self, scenario):
        plain = run_replay(scenario.built, scenario.trace("TRC1"),
                           ResilienceConfig.vanilla())
        validated = run_replay(scenario.built, scenario.trace("TRC1"),
                               ResilienceConfig.vanilla(), validation=True)
        assert validated.metrics == plain.metrics
        assert validated.window == plain.window
        assert validated.to_summary() == plain.to_summary()

    def test_validated_event_log_byte_identical(self, scenario, tmp_path):
        def events(tag, validation):
            path = tmp_path / f"{tag}.jsonl"
            run_replay(scenario.built, scenario.trace("TRC1"),
                       ResilienceConfig.refresh(),
                       attack=AttackSpec(start=scenario.attack_start,
                                         duration=6 * HOUR),
                       observe=ObservationSpec(events_path=str(path)),
                       validation=validation)
            return path.read_bytes()

        plain_log = events("plain", validation=False)
        validated_log = events("validated", validation=True)
        assert validated_log == plain_log
        assert plain_log

    def test_combination_scheme_passes_final_invariants(self, scenario):
        # combination() runs renewal + refresh, so the end-of-replay
        # invariant sweep covers the renewal checks too.
        result = run_replay(scenario.built, scenario.trace("TRC1"),
                            ResilienceConfig.combination(),
                            attack=AttackSpec(start=scenario.attack_start,
                                              duration=6 * HOUR),
                            validation=True)
        assert result.metrics.sr_queries > 0

    def test_replay_spec_carries_validation(self, scenario):
        plain_spec = ReplaySpec.for_scenario(
            scenario, "TRC1", ResilienceConfig.vanilla())
        validated_spec = ReplaySpec.for_scenario(
            scenario, "TRC1", ResilienceConfig.vanilla(), validation=True)
        assert plain_spec.validation is False
        assert validated_spec.validation is True
        plain, validated = run_replays([plain_spec, validated_spec],
                                       workers=1)
        assert plain == validated
