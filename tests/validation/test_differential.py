"""Bug-reinjection proofs: every fixed bug, reintroduced, must be caught.

``DifferentialCache`` calls ``DnsCache.method(self, ...)`` explicitly so
these tests can monkeypatch the base class with the *pre-fix* behaviour
and assert the corpus / differential layer fails with a
:class:`DivergenceError` (or :class:`InvariantViolation`) naming the
operation.
"""

import pytest

from repro.core.cache import DnsCache, cache_key
from repro.core.renewal import RenewalManager
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.rrtypes import RRType
from repro.validation.differential import DifferentialCache
from repro.validation.errors import DivergenceError, InvariantViolation
from repro.validation.fuzz import (
    CORPUS,
    apply_ops,
    make_rrset,
    run_corpus,
    run_fuzz,
    run_renewal_corpus,
)

_REAL_PUT = DnsCache.put


def _buggy_put(self, rrset, rank, now, refresh=False, taint=False):
    """The pre-fix overwrite: the entry keeps its stale LRU position.

    Implemented as a wrapper that undoes the fix's pop-then-set by
    restoring the key to the slot it occupied before the store.
    """
    key = rrset.ikey()
    if key not in self._entries:  # repro: ignore[REP008]
        return _REAL_PUT(self, rrset, rank, now, refresh, taint)
    order = list(self._entries)  # repro: ignore[REP008]
    result = _REAL_PUT(self, rrset, rank, now, refresh, taint)
    if result.stored and key in self._entries:  # repro: ignore[REP008]
        entries = dict(self._entries)  # repro: ignore[REP008]
        self._entries.clear()  # repro: ignore[REP008]
        for old_key in order:
            if old_key in entries:
                self._entries[old_key] = entries.pop(old_key)  # repro: ignore[REP008]
        self._entries.update(entries)  # repro: ignore[REP008]
    return result


def _buggy_total_entry_count(self):
    # Pre-fix: negative entries were invisible to the footprint count.
    return len(self._entries)  # repro: ignore[REP008]


def _buggy_remove(self, name, rrtype):
    # Pre-fix: only the positive entry was dropped; a negative verdict
    # under the same key survived a delegation change.
    key = cache_key(name, rrtype)
    if self._entries.pop(key, None) is None:  # repro: ignore[REP008]
        return False
    self._count_out(key)
    return True


def _buggy_purge_expired(self, now, older_than=0.0):
    # Pre-fix: lapsed negative entries accumulated forever.
    doomed = [
        key
        for key, entry in self._entries.items()  # repro: ignore[REP008]
        if entry.expires_at + older_than <= now
    ]
    for key in doomed:
        del self._entries[key]  # repro: ignore[REP008]
        self._count_out(key)
    return len(doomed)


def _silent_drop_on_timer(self, zone, now):
    """The pre-fix timer body: a successful refetch that does not move
    the expiry forward leaves the zone timerless with stranded credit."""
    self._timers.pop(zone, None)
    armed_expiry = self._armed_for.pop(zone, None)
    current_expiry = self._cache.zone_ns_expiry(zone, now)
    if current_expiry is None:
        self._lapse(zone, now, count=False)
        return
    if armed_expiry is not None and current_expiry > armed_expiry + 1e-6:
        self.note_irrs_cached(zone, current_expiry)
        return
    if not self.policy.take_renewal_credit(zone):
        self._lapse(zone, now)
        return
    self.renewals_attempted += 1
    if self._refetch(zone, now):
        self.renewals_succeeded += 1
        # ... and nothing else: no rearm, no lapse.  This is the bug.
    else:
        self.renewals_failed += 1
        self._lapse(zone, now)


def _always_counting_lapse(self, zone, now, count=True):
    # Pre-fix: a timer firing for an evicted zone counted as a lapse.
    self.lapses += 1
    self.policy.forget(zone)


def _case(name):
    return next(case for case in CORPUS if case.name == name)


class TestCorpusCatchesReinjectedCacheBugs:
    def test_lru_recency_on_refresh(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "put", _buggy_put)
        with pytest.raises(DivergenceError) as excinfo:
            run_corpus()
        message = str(excinfo.value)
        assert "lru-recency-on-refresh" in message
        assert "get(a.test./A" in message

    def test_lru_recency_on_dead_overwrite(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "put", _buggy_put)
        case = _case("lru-recency-on-dead-overwrite")
        cache = DifferentialCache(max_entries=case.max_entries)
        with pytest.raises(DivergenceError) as excinfo:
            apply_ops(cache, case.ops)
        assert excinfo.value.op is not None
        assert excinfo.value.op.startswith("get(a.test./A")

    def test_negative_entries_in_totals(self, monkeypatch):
        monkeypatch.setattr(
            DnsCache, "total_entry_count", _buggy_total_entry_count
        )
        with pytest.raises(DivergenceError) as excinfo:
            run_corpus()
        message = str(excinfo.value)
        assert "negative-entries-in-totals" in message
        assert "total_entry_count" in message

    def test_negative_entries_survive_remove(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "remove", _buggy_remove)
        with pytest.raises(DivergenceError) as excinfo:
            run_corpus()
        message = str(excinfo.value)
        assert "negative-entries-removed" in message
        assert "remove(host.test./MX" in message

    def test_negative_entries_survive_purge(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "purge_expired", _buggy_purge_expired)
        with pytest.raises(DivergenceError) as excinfo:
            run_corpus()
        message = str(excinfo.value)
        assert "negative-entries-purged" in message
        assert "purge_expired" in message

    def test_clean_build_passes(self):
        assert run_corpus() == len(CORPUS)


class TestRenewalCorpusCatchesReinjectedBugs:
    def test_silent_drop_strands_credit(self, monkeypatch):
        monkeypatch.setattr(RenewalManager, "_on_timer", _silent_drop_on_timer)
        with pytest.raises(InvariantViolation) as excinfo:
            run_renewal_corpus()
        assert excinfo.value.check in (
            "renewal-orphan-credit", "renewal-silent-drop"
        )

    def test_eviction_counted_as_lapse(self, monkeypatch):
        monkeypatch.setattr(RenewalManager, "_lapse", _always_counting_lapse)
        with pytest.raises(InvariantViolation) as excinfo:
            run_renewal_corpus()
        assert excinfo.value.check == "renewal-eviction-lapse"

    def test_clean_build_passes(self):
        assert run_renewal_corpus() == 3


class TestFuzzerCatchesReinjectedBugs:
    """The random fuzzer also finds the LRU bug, without the corpus."""

    def test_fuzz_flags_lru_recency_bug(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "put", _buggy_put)
        with pytest.raises(DivergenceError) as excinfo:
            run_fuzz(rounds=40, seed=1, ops_per_round=120)
        assert "fuzz round" in str(excinfo.value)

    def test_fuzz_flags_negative_leak(self, monkeypatch):
        monkeypatch.setattr(DnsCache, "purge_expired", _buggy_purge_expired)
        with pytest.raises(DivergenceError) as excinfo:
            run_fuzz(rounds=40, seed=1, ops_per_round=120)
        assert "fuzz round" in str(excinfo.value)


class _RecordingBus:
    def __init__(self):
        self.kinds = []

    def emit(self, kind, now, **fields):
        self.kinds.append(kind)


class TestObserverAttachment:
    """attach_observer must not rebind get() past the comparison layer."""

    def test_no_method_rebinding(self):
        cache = DifferentialCache()
        cache.attach_observer(_RecordingBus())
        assert "get" not in vars(cache)
        # The base class rebinds (the fast path this subclass avoids).
        base = DnsCache()
        base.attach_observer(_RecordingBus())
        assert "get" in vars(base)

    def test_events_flow_and_comparisons_continue(self):
        bus = _RecordingBus()
        cache = DifferentialCache(max_entries=2)
        cache.attach_observer(bus)
        cache.put(make_rrset("a.test.", RRType.A, 50.0, "10.0.0.1"),
                  Rank.AUTH_ANSWER, 0.0)
        checked_before = cache.ops_checked
        assert cache.get(Name.from_text("a.test."), RRType.A, 1.0) is not None
        assert cache.get(Name.from_text("b.test."), RRType.A, 1.0) is None
        assert cache.get(Name.from_text("a.test."), RRType.A, 60.0) is None
        assert cache.ops_checked > checked_before
        assert len(bus.kinds) == 3  # hit, miss, expired
        cache.audit(60.0)


class TestBackwardsClockReads:
    """Reads behind the count horizon use the scan fallback; the oracle
    (which always scans) must agree."""

    def test_backwards_reads_agree(self):
        cache = DifferentialCache()
        cache.put(make_rrset("a.test.", RRType.A, 5.0, "10.0.0.1"),
                  Rank.AUTH_ANSWER, 10.0)
        cache.put(make_rrset("z1.test.", RRType.NS, 100.0, "ns1.glue.test."),
                  Rank.AUTH_AUTHORITY, 10.0)
        # Forward query moves the incremental horizon past `a`'s expiry...
        assert cache.live_entry_count(16.0) == 1
        # ...so these backwards reads can only agree via the linear scan.
        assert cache.live_entry_count(12.0) == 2
        assert cache.live_record_count(12.0) == 2
        assert cache.live_zone_count(12.0) == 1
        cache.audit(16.0)
