"""Boundary semantics of the stale-read paths, pinned under the oracle.

``get_stale`` / ``allow_stale`` had no differential coverage: the
boundary convention (``now - expires_at > max_stale`` rejects, so an
entry *exactly* ``max_stale`` seconds past expiry is still served) was
only implied by the serve-stale comparator experiment.  These tests
run every read through :class:`DifferentialCache`, so the real cache
and the naive oracle must agree on each one — a divergence raises
before any assertion here even fires.  The second half drives the
stale-NS fallback in ``CachingServer._starting_zone`` / ``_zone_ns``
with the cache shadowed, which no test did before.
"""

from repro.core.caching_server import ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.simulation.attack import attack_on_root_and_tlds, attack_on_zones
from repro.validation.differential import DifferentialCache
from repro.validation.invariants import check_cache_invariants

from tests.conftest import make_stack
from tests.helpers import HOUR, name


def a_set(owner="www.x.test", ttl=300.0, address="10.0.0.1"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(owner), RRType.A, ttl, address)]
    )


def ns_set(zone="x.test", ttl=3600.0, server="ns1.x.test"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(zone), RRType.NS, ttl,
                        Name.from_text(server))]
    )


class TestGetStaleBoundary:
    """Lockstep reads at, around, and far past the max_stale bound."""

    def setup_method(self):
        self.cache = DifferentialCache()
        self.owner = Name.from_text("www.x.test")
        # Expires at t=10.
        self.cache.put(a_set(ttl=10.0), Rank.AUTH_ANSWER, now=0.0)

    def test_exactly_at_boundary_is_served(self):
        # 30 s past expiry with max_stale=30: not *more* stale than
        # allowed, so both implementations must serve it.
        assert self.cache.get_stale(self.owner, RRType.A, 40.0,
                                    max_stale=30.0) is not None

    def test_epsilon_past_boundary_is_rejected(self):
        assert self.cache.get_stale(self.owner, RRType.A, 40.5,
                                    max_stale=30.0) is None

    def test_zero_grace_serves_only_at_expiry_instant(self):
        assert self.cache.get_stale(self.owner, RRType.A, 10.0,
                                    max_stale=0.0) is not None
        assert self.cache.get_stale(self.owner, RRType.A, 10.5,
                                    max_stale=0.0) is None

    def test_live_entry_always_served(self):
        assert self.cache.get_stale(self.owner, RRType.A, 5.0,
                                    max_stale=0.0) is not None

    def test_none_means_unbounded(self):
        assert self.cache.get_stale(self.owner, RRType.A, 1e9,
                                    max_stale=None) is not None

    def test_unknown_name_is_none(self):
        assert self.cache.get_stale(Name.from_text("ghost.x.test"),
                                    RRType.A, 5.0, max_stale=None) is None
        check_cache_invariants(self.cache, now=5.0)
        assert self.cache.ops_checked >= 6


class TestBestZoneAllowStale:
    """allow_stale zone selection, shadowed."""

    def test_lapsed_deep_zone_returned_only_with_allow_stale(self):
        cache = DifferentialCache()
        cache.put(ns_set(zone="test", ttl=100.0), Rank.AUTH_AUTHORITY, 0.0)
        cache.put(ns_set(zone="x.test", ttl=10.0), Rank.AUTH_AUTHORITY, 0.0)
        qname = Name.from_text("www.x.test")
        assert cache.best_zone_for(qname, 50.0) == Name.from_text("test")
        assert cache.best_zone_for(qname, 50.0, allow_stale=True) \
            == Name.from_text("x.test")


class TestStaleNsFallbackShadowed:
    """The serve-stale resolution path with every cache op shadowed."""

    def test_stale_ns_reaches_live_sld_under_validation(self, mini):
        # IRRs expired, root+TLD blocked, SLD alive: `_starting_zone`
        # picks the lapsed SLD zone via allow_stale and `_zone_ns`
        # hands out its stale NS names.
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        server, *_ = make_stack(mini, ResilienceConfig.stale_serving(),
                                attacks=attacks, validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("mail.example.test."),
                                          RRType.A, 2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.ANSWERED
        assert server.cache.ops_checked > 0
        check_cache_invariants(server.cache, now=2.5 * HOUR)

    def test_stale_answer_when_all_paths_blocked_under_validation(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        attacks.add_window(
            attack_on_zones(mini.tree, [name("example.test.")],
                            start=2 * HOUR, duration=2 * HOUR).windows()[0]
        )
        server, *_ = make_stack(mini, ResilienceConfig.stale_serving(),
                                attacks=attacks, validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("www.example.test."),
                                          RRType.A, 2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.STALE_HIT


class TestSwrShadowed:
    """The swr scheme's stale read + background refetch, shadowed."""

    def test_swr_serves_stale_and_refetches_once(self, mini):
        config = ResilienceConfig.swr(grace=HOUR)
        server, engine, _, metrics = make_stack(mini, config,
                                                validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        entry = server.cache.entry(name("www.example.test."), RRType.A)
        just_stale = entry.expires_at + 1.0
        engine.advance_to(just_stale)
        first = server.handle_stub_query(name("www.example.test."),
                                         RRType.A, just_stale)
        assert first.outcome is ResolutionOutcome.STALE_HIT
        # A second stale hit dedups onto the pending refetch.
        second = server.handle_stub_query(name("www.example.test."),
                                          RRType.A, just_stale)
        assert second.outcome is ResolutionOutcome.STALE_HIT
        assert metrics.swr_refreshes == 1
        assert metrics.sr_stale_hits == 2
        # Fire the background refetch: the entry comes back live and
        # its fetch was renewal-tagged (no demand queries added).
        demand_before = metrics.cs_demand_queries
        engine.advance_to(just_stale + 1.0)
        assert metrics.cs_demand_queries == demand_before
        assert metrics.cs_renewal_queries > 0
        refreshed = server.cache.get(name("www.example.test."), RRType.A,
                                     just_stale + 1.0)
        assert refreshed is not None

    def test_swr_past_grace_refetches_in_foreground(self, mini):
        config = ResilienceConfig.swr(grace=60.0)
        server, engine, _, metrics = make_stack(mini, config,
                                                validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        entry = server.cache.entry(name("www.example.test."), RRType.A)
        past_grace = entry.expires_at + 61.0
        engine.advance_to(past_grace)
        resolution = server.handle_stub_query(name("www.example.test."),
                                              RRType.A, past_grace)
        assert resolution.outcome is ResolutionOutcome.ANSWERED
        assert metrics.swr_refreshes == 0


class TestInvalidationShadowed:
    """The decoupled scheme's invalidation eviction, shadowed."""

    def test_invalidation_evicts_and_schedules_renewal_refetch(self, mini):
        config = ResilienceConfig.decoupled(7.0)
        server, engine, _, metrics = make_stack(mini, config,
                                                validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        zone = name("example.test.")
        assert server.cache.entry(zone, RRType.NS) is not None
        server.handle_invalidation(zone, 10.0)
        assert server.cache.entry(zone, RRType.NS) is None
        assert metrics.invalidations == 1
        # The scheduled NS refetch is renewal-tagged.
        engine.advance_to(11.0)
        assert metrics.cs_renewal_queries > 0
        assert server.cache.entry(zone, RRType.NS) is not None
        check_cache_invariants(server.cache, now=11.0)

    def test_invalidation_ignored_without_update_channel(self, mini):
        server, _, _, metrics = make_stack(
            mini, ResilienceConfig.refresh_long_ttl(7.0), validation=True)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        zone = name("example.test.")
        server.handle_invalidation(zone, 10.0)
        assert server.cache.entry(zone, RRType.NS) is not None
        assert metrics.invalidations == 0
