"""The naive oracle must match the documented cache contract."""

from hypothesis import given, strategies as st

from repro.core.cache import DnsCache
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.validation.differential import DifferentialCache
from repro.validation.oracle import OracleCache


def a_set(owner="www.x.test", ttl=300.0, address="10.0.0.1"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(owner), RRType.A, ttl, address)]
    )


def ns_set(zone="x.test", ttl=3600.0, server="ns1.x.test"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(zone), RRType.NS, ttl,
                        Name.from_text(server))]
    )


class TestOracleSemantics:
    """Spot-checks of the tricky contract points, oracle-only."""

    def test_vanilla_same_data_does_not_restart_ttl(self):
        oracle = OracleCache()
        oracle.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        result = oracle.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=50.0)
        assert not result.stored
        assert oracle.expires_at(Name.from_text("x.test"), RRType.NS,
                                 50.0) == 100.0

    def test_refresh_restarts_ttl(self):
        oracle = OracleCache()
        oracle.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        result = oracle.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=50.0,
                            refresh=True)
        assert result.stored and result.refreshed
        assert oracle.expires_at(Name.from_text("x.test"), RRType.NS,
                                 50.0) == 150.0

    def test_lower_rank_never_downgrades(self):
        oracle = OracleCache()
        oracle.put(a_set(address="10.0.0.1"), Rank.AUTH_ANSWER, now=0.0)
        assert not oracle.put(a_set(address="10.0.0.2"), Rank.ADDITIONAL,
                              now=0.0).stored

    def test_lru_eviction_order(self):
        oracle = OracleCache(max_entries=2)
        oracle.put(a_set(owner="a.x.test"), Rank.AUTH_ANSWER, now=0.0)
        oracle.put(a_set(owner="b.x.test"), Rank.AUTH_ANSWER, now=1.0)
        # Touch `a` so `b` becomes the eviction victim.
        assert oracle.get(Name.from_text("a.x.test"), RRType.A, 2.0)
        oracle.put(a_set(owner="c.x.test"), Rank.AUTH_ANSWER, now=3.0)
        assert oracle.get(Name.from_text("a.x.test"), RRType.A, 4.0)
        assert oracle.get(Name.from_text("b.x.test"), RRType.A, 4.0) is None
        assert oracle.evictions == 1

    def test_negative_entries_counted_purged_removed(self):
        oracle = OracleCache()
        ghost = Name.from_text("ghost.x.test")
        oracle.put_negative(ghost, RRType.A, 0.0, 10.0)
        assert oracle.total_entry_count() == 1
        assert oracle.get_negative(ghost, RRType.A, 5.0)
        assert oracle.purge_expired(now=100.0) == 1
        assert oracle.total_entry_count() == 0
        oracle.put_negative(ghost, RRType.A, 100.0, 50.0)
        assert oracle.remove(ghost, RRType.A)
        assert not oracle.get_negative(ghost, RRType.A, 101.0)

    def test_max_effective_ttl_caps_lifetime(self):
        oracle = OracleCache(max_effective_ttl=100.0)
        oracle.put(a_set(ttl=10_000), Rank.AUTH_ANSWER, now=0.0)
        owner = Name.from_text("www.x.test")
        assert oracle.get(owner, RRType.A, 99.0) is not None
        assert oracle.get(owner, RRType.A, 101.0) is None
        assert oracle.entry(owner, RRType.A).published_ttl == 10_000

    def test_best_zone_prefers_deepest_live(self):
        oracle = OracleCache()
        oracle.put(ns_set(zone="test", ttl=100), Rank.AUTH_AUTHORITY, 0.0)
        oracle.put(ns_set(zone="x.test", ttl=10), Rank.AUTH_AUTHORITY, 0.0)
        qname = Name.from_text("www.x.test")
        assert oracle.best_zone_for(qname, 5.0) == Name.from_text("x.test")
        # After the deep NS lapses the parent is the best live zone.
        assert oracle.best_zone_for(qname, 50.0) == Name.from_text("test")
        assert oracle.best_zone_for(qname, 50.0, allow_stale=True) \
            == Name.from_text("x.test")


_OWNERS = ("a.x.test", "b.x.test", "c.x.test", "d.x.test")


class TestLockstepEquivalence:
    """Property check: random op soups never diverge from the real cache.

    The DifferentialCache raises on the first disagreement, so "no
    exception" is the assertion.
    """

    @given(
        st.integers(min_value=0, max_value=3),  # capacity selector
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # owner index
                st.sampled_from(["put", "get", "refresh", "remove",
                                 "purge", "negative"]),
                st.floats(min_value=0.5, max_value=120.0, allow_nan=False),
            ),
            max_size=40,
        ),
    )
    def test_random_ops_never_diverge(self, capacity_pick, steps):
        capacity = (None, 2, 3, 5)[capacity_pick]
        cache = DifferentialCache(max_entries=capacity)
        now = 0.0
        for owner_index, action, ttl in steps:
            now += 1.0
            owner = _OWNERS[owner_index]
            name = Name.from_text(owner)
            if action == "put":
                cache.put(a_set(owner=owner, ttl=ttl), Rank.AUTH_ANSWER, now)
            elif action == "refresh":
                cache.put(a_set(owner=owner, ttl=ttl), Rank.AUTH_ANSWER, now,
                          refresh=True)
            elif action == "get":
                cache.get(name, RRType.A, now)
            elif action == "remove":
                cache.remove(name, RRType.A)
            elif action == "purge":
                cache.purge_expired(now, older_than=ttl)
            else:
                cache.put_negative(name, RRType.A, now, ttl)
                cache.get_negative(name, RRType.A, now)
        cache.live_entry_count(now)
        cache.total_entry_count()
        cache.audit(now)

    def test_oracle_is_shared_api_subset(self):
        # Every public cache method the simulator calls must exist on
        # the oracle with the same name (lockstep dispatch relies on it).
        for method in ("put", "get", "get_stale", "entry", "expires_at",
                       "remove", "put_negative", "get_negative",
                       "zone_ns_expiry", "best_zone_for",
                       "live_entry_count", "live_record_count",
                       "live_zone_count", "total_entry_count",
                       "purge_expired"):
            assert callable(getattr(OracleCache, method))
            assert callable(getattr(DnsCache, method))
