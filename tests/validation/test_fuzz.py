"""The fuzzer itself: green on the fixed build, deterministic per seed."""

from repro.validation.fuzz import FuzzReport, run_corpus, run_fuzz


class TestFuzzRuns:
    def test_small_run_is_green(self):
        report = run_fuzz(rounds=10, seed=3, ops_per_round=80)
        assert report == FuzzReport(rounds=10, ops=800, seed=3)

    def test_same_seed_same_coverage(self):
        first = run_fuzz(rounds=5, seed=11, ops_per_round=60)
        second = run_fuzz(rounds=5, seed=11, ops_per_round=60)
        assert first == second

    def test_corpus_is_green(self):
        # 5 original cases + the PR-10 stale-boundary/invalidation pair.
        assert run_corpus() == 7
