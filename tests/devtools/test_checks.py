"""Tests for the determinism lint framework (``repro check``).

Each rule gets three fixtures: a positive hit, clean code, and a
``# repro: ignore[...]`` suppression.  The fixtures are written into a
tmp directory whose layout mimics the real tree, because several rules
scope themselves by path (``analysis/``, ``experiments/``, ...).
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.devtools.checks import (
    FINDINGS_SCHEMA,
    CheckReport,
    parse_suppressions,
    run_checks,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def check_snippet(tmp_path: Path, relpath: str, source: str) -> CheckReport:
    """Write ``source`` at ``relpath`` under ``tmp_path`` and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_checks([target])


def rule_ids(report: CheckReport) -> list[str]:
    return [violation.rule for violation in report.violations]


class TestSuppressionParsing:
    def test_bare_ignore_suppresses_all(self):
        suppressed = parse_suppressions("x = 1  # repro: ignore\n")
        assert suppressed[1] == frozenset(("*",))

    def test_rule_list(self):
        suppressed = parse_suppressions("x = 1  # repro: ignore[REP001, REP003]\n")
        assert suppressed[1] == frozenset(("REP001", "REP003"))

    def test_plain_comment_is_not_a_suppression(self):
        assert parse_suppressions("x = 1  # a comment\n") == {}

    def test_rule_ids_are_case_normalised(self):
        suppressed = parse_suppressions("x = 1  # repro: ignore[rep001]\n")
        assert suppressed[1] == frozenset(("REP001",))

    def test_whitespace_inside_bracket_list(self):
        suppressed = parse_suppressions(
            "x = 1  # repro: ignore[ REP001 ,REP003,  rep005 ]\n"
        )
        assert suppressed[1] == frozenset(("REP001", "REP003", "REP005"))

    def test_empty_entries_in_rule_list_are_dropped(self):
        suppressed = parse_suppressions("x = 1  # repro: ignore[REP001,,]\n")
        assert suppressed[1] == frozenset(("REP001",))

    def test_multiple_markers_on_one_line_union(self):
        suppressed = parse_suppressions(
            "x = 1  # repro: ignore[REP001] # repro: ignore[REP002]\n"
        )
        assert suppressed[1] == frozenset(("REP001", "REP002"))

    def test_bare_marker_next_to_rule_list_still_suppresses_all(self):
        suppressed = parse_suppressions(
            "x = 1  # repro: ignore # repro: ignore[REP001]\n"
        )
        assert "*" in suppressed[1]

    def test_marker_after_unrelated_comment_text(self):
        suppressed = parse_suppressions(
            "x = 1  # see DESIGN.md  # repro: ignore[REP001]\n"
        )
        assert suppressed[1] == frozenset(("REP001",))

    def test_extra_spaces_around_marker_keywords(self):
        suppressed = parse_suppressions("x = 1  #  repro:   ignore\n")
        assert suppressed[1] == frozenset(("*",))


class TestWallClockRule:
    def test_flags_time_time(self, tmp_path):
        report = check_snippet(tmp_path, "simulation/clock.py", """\
            import time

            def stamp() -> float:
                return time.time()
            """)
        assert rule_ids(report) == ["REP001"]
        assert report.violations[0].line == 4

    def test_flags_datetime_now_via_alias(self, tmp_path):
        report = check_snippet(tmp_path, "simulation/clock.py", """\
            from datetime import datetime as dt

            def stamp():
                return dt.now()
            """)
        assert "REP001" in rule_ids(report)

    def test_clean_simulated_clock(self, tmp_path):
        report = check_snippet(tmp_path, "simulation/clock.py", """\
            def stamp(now: float) -> float:
                return now
            """)
        assert report.clean

    def test_benchmarks_are_exempt(self, tmp_path):
        report = check_snippet(tmp_path, "benchmarks/bench_clock.py", """\
            import time

            def measure() -> float:
                return time.perf_counter()
            """)
        assert report.clean

    def test_serve_front_end_is_exempt(self, tmp_path):
        """repro/serve/ is wall-clock territory by design (PR 8)."""
        report = check_snippet(tmp_path, "repro/serve/clock.py", """\
            import time

            def now() -> float:
                return time.monotonic()
            """)
        assert report.clean

    def test_serve_exemption_does_not_leak_into_core(self, tmp_path):
        """A serve-sounding file under core/ stays in scope."""
        report = check_snippet(tmp_path, "repro/core/serve_bridge.py", """\
            import time

            def now() -> float:
                return time.monotonic()
            """)
        assert rule_ids(report) == ["REP001"]

    def test_serve_exemption_does_not_leak_into_simulation(self, tmp_path):
        report = check_snippet(tmp_path, "repro/simulation/serve.py", """\
            import time

            def now() -> float:
                return time.time()
            """)
        assert rule_ids(report) == ["REP001"]

    def test_serve_is_not_exempt_from_unseeded_randomness(self, tmp_path):
        """Only REP001 is waived in serve/; REP002 still applies there."""
        report = check_snippet(tmp_path, "repro/serve/jitter.py", """\
            import random

            def jitter() -> float:
                return random.random()
            """)
        assert rule_ids(report) == ["REP002"]

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "simulation/clock.py", """\
            import time

            def stamp() -> float:
                return time.time()  # repro: ignore[REP001]
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestUnseededRandomRule:
    def test_flags_module_level_random(self, tmp_path):
        report = check_snippet(tmp_path, "workload/pick.py", """\
            import random

            def pick(items):
                return random.choice(items)
            """)
        assert "REP002" in rule_ids(report)

    def test_flags_unseeded_random_constructor(self, tmp_path):
        report = check_snippet(tmp_path, "workload/pick.py", """\
            import random

            rng = random.Random()
            """)
        assert "REP002" in rule_ids(report)

    def test_seeded_instance_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "workload/pick.py", """\
            import random

            def pick(seed: int, items):
                rng = random.Random(seed)
                return rng.choice(items)
            """)
        assert report.clean

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "workload/pick.py", """\
            import random

            TOKEN = random.getrandbits(64)  # repro: ignore[REP002]
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestSetIterationRule:
    def test_flags_loop_over_set_variable(self, tmp_path):
        report = check_snippet(tmp_path, "hierarchy/walk.py", """\
            def totals() -> list[int]:
                values = {3, 1, 2}
                out = []
                for value in values:
                    out.append(value)
                return out
            """)
        assert rule_ids(report) == ["REP003"]
        assert report.violations[0].line == 4

    def test_flags_comprehension_over_set_algebra(self, tmp_path):
        report = check_snippet(tmp_path, "hierarchy/walk.py", """\
            def union(a: set[int], b: set[int]) -> list[int]:
                return [item for item in a | b]
            """)
        assert "REP003" in rule_ids(report)

    def test_sorted_wrapper_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "hierarchy/walk.py", """\
            def totals() -> list[int]:
                values = {3, 1, 2}
                return [value for value in sorted(values)]
            """)
        assert report.clean

    def test_membership_and_len_are_clean(self, tmp_path):
        report = check_snippet(tmp_path, "hierarchy/walk.py", """\
            def stats(values: set[int]) -> tuple[int, bool]:
                return len(values), 3 in values
            """)
        assert report.clean

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "hierarchy/walk.py", """\
            def drain(values: set[int]) -> None:
                for value in values:  # repro: ignore[REP003]
                    print(value)
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestPicklableSpecRule:
    def test_flags_callable_field(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/jobs.py", """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class JobSpec:
                worker: Callable[[int], int]
            """)
        assert "REP004" in rule_ids(report)

    def test_flags_lambda_in_spec(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/jobs.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobSpec:
                scale = lambda x: x * 2
            """)
        assert "REP004" in rule_ids(report)

    def test_flags_non_dataclass_spec(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/jobs.py", """\
            class JobSpec:
                pass
            """)
        assert "REP004" in rule_ids(report)

    def test_plain_dataclass_spec_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/jobs.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobSpec:
                zone_count: int
                seed: int = 0
            """)
        assert report.clean

    def test_rule_is_scoped_to_experiments(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/jobs.py", """\
            class JobSpec:
                pass
            """)
        assert "REP004" not in rule_ids(report)

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/jobs.py", """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class JobSpec:
                worker: Callable[[int], int]  # repro: ignore[REP004]
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestFloatComparisonRule:
    def test_flags_float_equality_in_analysis(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/rates.py", """\
            def at_zero(rate: float) -> bool:
                return rate == 0.0
            """)
        assert rule_ids(report) == ["REP005"]

    def test_flags_inequality_against_float_call(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/rates.py", """\
            def differs(rate: float, text: str) -> bool:
                return rate != float(text)
            """)
        assert "REP005" in rule_ids(report)

    def test_ordering_comparisons_are_clean(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/rates.py", """\
            def at_zero(rate: float) -> bool:
                return rate <= 0.0
            """)
        assert report.clean

    def test_rule_is_scoped_to_analysis_and_metrics(self, tmp_path):
        report = check_snippet(tmp_path, "workload/rates.py", """\
            def at_zero(rate: float) -> bool:
                return rate == 0.0
            """)
        assert "REP005" not in rule_ids(report)

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/rates.py", """\
            def at_zero(rate: float) -> bool:
                return rate == 0.0  # repro: ignore[REP005]
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestNameMutationRule:
    def test_flags_object_setattr_outside_init(self, tmp_path):
        report = check_snippet(tmp_path, "dns/retag.py", """\
            class Thing:
                def rename(self, label: str) -> None:
                    object.__setattr__(self, "label", label)
            """)
        assert rule_ids(report) == ["REP006"]

    def test_flags_attribute_store_on_name_variable(self, tmp_path):
        report = check_snippet(tmp_path, "dns/retag.py", """\
            from repro.dns.name import Name

            def retag(name: Name) -> None:
                name.labels = ()
            """)
        assert "REP006" in rule_ids(report)

    def test_object_setattr_in_init_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "dns/retag.py", """\
            class Frozen:
                def __init__(self, label: str) -> None:
                    object.__setattr__(self, "label", label)
            """)
        assert report.clean

    def test_post_init_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "dns/retag.py", """\
            class Frozen:
                def __post_init__(self) -> None:
                    object.__setattr__(self, "label", "x")
            """)
        assert report.clean

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "dns/retag.py", """\
            class Thing:
                def rename(self, label: str) -> None:
                    object.__setattr__(self, "label", label)  # repro: ignore[REP006]
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestBareAssertRule:
    def test_flags_assert_in_library_code(self, tmp_path):
        report = check_snippet(tmp_path, "core/invariants.py", """\
            def pop(queue: list) -> object:
                assert queue, "queue must not be empty"
                return queue.pop()
            """)
        assert rule_ids(report) == ["REP007"]

    def test_typed_error_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "core/invariants.py", """\
            def pop(queue: list) -> object:
                if not queue:
                    raise RuntimeError("queue must not be empty")
                return queue.pop()
            """)
        assert report.clean

    def test_tests_are_exempt(self, tmp_path):
        report = check_snippet(tmp_path, "tests/test_invariants.py", """\
            def test_pop():
                assert [1].pop() == 1
            """)
        assert report.clean

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "core/invariants.py", """\
            def pop(queue: list) -> object:
                assert queue  # repro: ignore[REP007]
                return queue.pop()
            """)
        assert report.clean
        assert report.suppressed_count == 1


class TestPrivateCacheAccessRule:
    def test_flags_entries_access_outside_core(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/peek.py", """\
            def occupancy(cache) -> int:
                return len(cache._entries)
            """)
        assert rule_ids(report) == ["REP008"]
        assert report.violations[0].line == 2

    def test_flags_negative_access(self, tmp_path):
        report = check_snippet(tmp_path, "experiments/probe.py", """\
            def verdicts(cache) -> dict:
                return dict(cache._negative)
            """)
        assert rule_ids(report) == ["REP008"]

    def test_core_package_is_exempt(self, tmp_path):
        report = check_snippet(tmp_path, "repro/core/helper.py", """\
            def occupancy(cache) -> int:
                return len(cache._entries)
            """)
        assert rule_ids(report) == []

    def test_validation_package_is_exempt(self, tmp_path):
        report = check_snippet(tmp_path, "repro/validation/helper.py", """\
            def occupancy(cache) -> int:
                return len(cache._entries)
            """)
        assert rule_ids(report) == []

    def test_public_attribute_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/peek.py", """\
            def occupancy(cache, now: float) -> int:
                return cache.live_entry_count(now)
            """)
        assert rule_ids(report) == []

    def test_suppression(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/peek.py", """\
            def occupancy(cache) -> int:
                return len(cache._entries)  # repro: ignore[REP008]
            """)
        assert rule_ids(report) == []


class TestFramework:
    def test_syntax_error_propagates(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(SyntaxError):
            run_checks([bad])

    def test_report_is_sorted_and_counts_files(self, tmp_path):
        check_dir = tmp_path / "analysis"
        check_dir.mkdir()
        (check_dir / "b.py").write_text(
            "def g(x: float) -> bool:\n    return x == 0.0\n", encoding="utf-8"
        )
        (check_dir / "a.py").write_text(
            "def f(x: float) -> bool:\n    return x != 1.0\n", encoding="utf-8"
        )
        report = run_checks([tmp_path])
        assert report.files_checked == 2
        assert [v.path.rsplit("/", 1)[-1] for v in report.violations] == [
            "a.py",
            "b.py",
        ]

    def test_violation_dict_shape(self, tmp_path):
        report = check_snippet(tmp_path, "analysis/rates.py", """\
            def at_zero(rate: float) -> bool:
                return rate == 0.0
            """)
        entry = report.violations[0].as_dict()
        assert set(entry) == {"rule", "path", "line", "message", "fix_hint"}
        assert entry["rule"] == "REP005"
        assert entry["line"] == 2


class TestCheckCommand:
    def test_current_tree_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["check"]) == 0

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "simulation" / "clock.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n\ndef stamp() -> float:\n    return time.time()\n",
            encoding="utf-8",
        )
        assert main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "clock.py:5" in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "analysis" / "rates.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def at_zero(rate: float) -> bool:\n    return rate == 0.0\n",
            encoding="utf-8",
        )
        assert main(["check", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "repro-check"
        findings = payload["findings"]
        assert len(findings) == 1
        assert findings[0]["rule"] == "REP005"
        assert findings[0]["line"] == 2
        assert findings[0]["path"].endswith("rates.py")
        assert payload["summary"]["files"] == 1

    def test_json_output_has_empty_findings_when_clean(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["check", str(clean), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["findings"] == []

    def test_ignore_glob_skips_file(self, tmp_path, capsys):
        bad = tmp_path / "analysis" / "rates.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def at_zero(rate: float) -> bool:\n    return rate == 0.0\n",
            encoding="utf-8",
        )
        assert main(["check", str(bad), "--ignore", "*/rates.py"]) == 0
        assert "0 files clean" in capsys.readouterr().out

    def test_tests_are_held_to_scoped_rules_only(self, tmp_path, capsys):
        """Wall-clock reads flag in tests; structural rules do not."""
        test_file = tmp_path / "tests" / "analysis" / "test_rates.py"
        test_file.parent.mkdir(parents=True)
        test_file.write_text(
            "import time\n\n\n"
            "def test_rates() -> None:\n"
            "    assert time.time() > 0  # REP001 applies\n"
            "    assert 0.5 == 0.5  # REP005 would fire in src, not here\n",
            encoding="utf-8",
        )
        assert main(["check", str(test_file)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "REP005" not in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                        "REP006", "REP007"):
            assert rule_id in out
