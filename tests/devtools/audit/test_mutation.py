"""Tests for per-function mutation sets and the transitive closure."""

from repro.devtools.audit.callgraph import CallGraph
from repro.devtools.audit.mutation import MutationAnalysis
from repro.devtools.audit.project import ProjectIndex


def analysis_over(write_tree, files) -> MutationAnalysis:
    return MutationAnalysis(CallGraph(ProjectIndex.build([write_tree(files)])))


def direct_keys(analysis: MutationAnalysis, qualname: str) -> set:
    return {write.key for write in analysis.direct.get(qualname, ())}


class TestDirectWrites:
    def test_attribute_assignment(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Zone:
                    def bump(self):
                        self.serial = 1
                """,
        })
        assert direct_keys(analysis, "repro.mod.Zone.bump") == {
            ("repro.mod.Zone", "serial")
        }

    def test_augmented_assignment(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Zone:
                    def bump(self):
                        self.serial += 1
                """,
        })
        assert ("repro.mod.Zone", "serial") in direct_keys(
            analysis, "repro.mod.Zone.bump"
        )

    def test_subscript_store_into_field(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Cache:
                    def put(self, key, value):
                        self._entries[key] = value
                """,
        })
        assert ("repro.mod.Cache", "_entries") in direct_keys(
            analysis, "repro.mod.Cache.put"
        )

    def test_mutating_method_on_field(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Cache:
                    def reset(self):
                        self._entries.clear()
                """,
        })
        assert ("repro.mod.Cache", "_entries") in direct_keys(
            analysis, "repro.mod.Cache.reset"
        )

    def test_mutation_through_local_alias(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Cache:
                    def trim(self):
                        entries = self._entries
                        entries.pop()
                """,
        })
        assert ("repro.mod.Cache", "_entries") in direct_keys(
            analysis, "repro.mod.Cache.trim"
        )

    def test_object_setattr_counts_as_a_write(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Frozen:
                    def _fill(self, value):
                        object.__setattr__(self, "cached", value)
                """,
        })
        assert ("repro.mod.Frozen", "cached") in direct_keys(
            analysis, "repro.mod.Frozen._fill"
        )

    def test_read_only_method_has_no_writes(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Zone:
                    def peek(self):
                        return self.serial
                """,
        })
        assert analysis.direct.get("repro.mod.Zone.peek", ()) == ()
        assert analysis.is_pure("repro.mod.Zone.peek")


class TestTransitiveClosure:
    FILES = {
        "mod.py": """\
            class Zone:
                def outer(self):
                    self._inner()

                def _inner(self):
                    self.serial = 1

                def unrelated(self):
                    return None
            """,
    }

    def test_writes_flow_up_the_call_chain(self, write_tree):
        analysis = analysis_over(write_tree, self.FILES)
        assert analysis.mutates(
            "repro.mod.Zone.outer", "repro.mod.Zone", "serial"
        )

    def test_purity_respects_the_closure(self, write_tree):
        analysis = analysis_over(write_tree, self.FILES)
        assert not analysis.is_pure("repro.mod.Zone.outer")
        assert analysis.is_pure("repro.mod.Zone.unrelated")

    def test_cross_class_mutation_attributes_to_the_target(self, write_tree):
        analysis = analysis_over(write_tree, {
            "mod.py": """\
                class Entry:
                    def touch(self):
                        self.hits = 1


                class Cache:
                    entry: Entry

                    def hit(self):
                        self.entry.touch()
                """,
        })
        assert analysis.mutates(
            "repro.mod.Cache.hit", "repro.mod.Entry", "hits"
        )
