"""Shared fixtures for the whole-program audit tests.

Fixtures write small synthetic package trees into ``tmp_path``.  The
audit treats each root directory's own name as the package name, so a
tree rooted at ``tmp_path / "repro"`` indexes as ``repro.*`` — which is
exactly what the REP013 sink prefixes (``repro.simulation`` /
``repro.core``) key on.
"""

import textwrap
from pathlib import Path

import pytest

from repro.devtools.audit.rules import AuditContext


@pytest.fixture
def write_tree(tmp_path):
    """Write ``{relpath: source}`` under a package root and return it."""

    def _write(files: dict, package: str = "repro") -> Path:
        root = tmp_path / package
        for relpath, source in files.items():
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return root

    return _write


@pytest.fixture
def build_context(write_tree):
    """Write a tree and build the full :class:`AuditContext` over it."""

    def _build(files: dict, package: str = "repro") -> AuditContext:
        return AuditContext.build([write_tree(files, package)])

    return _build
