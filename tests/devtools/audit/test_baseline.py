"""Tests for the accepted-findings baseline (add/expire semantics)."""

import json

import pytest

from repro.devtools.audit.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    fingerprint,
)
from repro.devtools.checks import Violation


def make_violation(rule="REP010", path="src/repro/dns/zone.py", line=10,
                   message="mutates without invalidating") -> Violation:
    return Violation(rule=rule, path=path, line=line, message=message)


class TestFingerprint:
    def test_line_number_does_not_change_identity(self):
        assert fingerprint(make_violation(line=10)) == fingerprint(
            make_violation(line=99)
        )

    def test_rule_path_and_message_all_discriminate(self):
        base = fingerprint(make_violation())
        assert fingerprint(make_violation(rule="REP011")) != base
        assert fingerprint(make_violation(path="other.py")) != base
        assert fingerprint(make_violation(message="different")) != base

    def test_fingerprint_is_stable_across_runs(self):
        """Committed baselines depend on this exact derivation."""
        violation = Violation(rule="R", path="p", line=1, message="m")
        assert fingerprint(violation) == fingerprint(violation)
        assert len(fingerprint(violation)) == 24  # blake2b digest_size=12


class TestLoadSave:
    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}

    def test_roundtrip_preserves_entries(self, tmp_path):
        violation = make_violation()
        baseline = Baseline.empty().updated_from((violation,))
        target = tmp_path / "baseline.json"
        baseline.save(target)
        restored = Baseline.load(target)
        assert violation in restored
        (entry,) = restored.entries.values()
        assert entry.rule == violation.rule
        assert entry.path == violation.path

    def test_unknown_schema_is_rejected_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": "bogus/9", "entries": []}),
                          encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            Baseline.load(target)

    def test_saved_file_carries_the_schema_tag(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.empty().save(target)
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["schema"] == BASELINE_SCHEMA
        assert data["entries"] == []

    def test_saved_entries_are_sorted_for_stable_diffs(self, tmp_path):
        violations = (
            make_violation(path="z.py", message="zz"),
            make_violation(path="a.py", message="aa"),
        )
        target = tmp_path / "baseline.json"
        Baseline.empty().updated_from(violations).save(target)
        data = json.loads(target.read_text(encoding="utf-8"))
        assert [e["path"] for e in data["entries"]] == ["a.py", "z.py"]


class TestSplit:
    def test_new_accepted_and_expired(self):
        accepted_v = make_violation(message="accepted finding")
        gone_v = make_violation(message="finding that was fixed")
        baseline = Baseline.empty().updated_from((accepted_v, gone_v))

        fresh_v = make_violation(message="a brand new finding")
        new, accepted, expired = baseline.split((accepted_v, fresh_v))

        assert new == (fresh_v,)
        assert accepted == (accepted_v,)
        (expired_entry,) = expired
        assert expired_entry.fingerprint == fingerprint(gone_v)

    def test_clean_run_against_empty_baseline(self):
        new, accepted, expired = Baseline.empty().split(())
        assert (new, accepted, expired) == ((), (), ())

    def test_line_shift_keeps_a_finding_accepted(self):
        """Unrelated edits must not churn the baseline."""
        baseline = Baseline.empty().updated_from((make_violation(line=10),))
        new, accepted, expired = baseline.split((make_violation(line=42),))
        assert new == ()
        assert len(accepted) == 1
        assert expired == ()


class TestUpdatedFrom:
    def test_new_entries_get_the_todo_placeholder(self):
        baseline = Baseline.empty().updated_from((make_violation(),))
        (entry,) = baseline.entries.values()
        assert "TODO" in entry.justification

    def test_existing_justifications_are_preserved(self):
        violation = make_violation()
        first = Baseline.empty().updated_from((violation,))
        key = fingerprint(violation)
        first.entries[key] = first.entries[key].__class__(
            fingerprint=key,
            rule=violation.rule,
            path=violation.path,
            message=violation.message,
            justification="reviewed 2026-08: intentional, see DESIGN §14",
        )
        second = first.updated_from((violation,))
        assert second.entries[key].justification.startswith("reviewed 2026-08")

    def test_absent_findings_are_dropped(self):
        violation = make_violation()
        baseline = Baseline.empty().updated_from((violation,))
        rewritten = baseline.updated_from(())
        assert rewritten.entries == {}
