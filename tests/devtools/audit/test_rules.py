"""Seeded bug-reinjection tests for REP010–REP013.

Each rule gets (at least) a clean fixture and one deliberately broken
variant per failure mode it exists to catch — the broken variants are
the regressions the audit must keep catching, re-planted in miniature.
The final class proves the real tree passes with zero findings.
"""

from pathlib import Path

import repro
from repro.devtools.audit.rules import (
    ALL_AUDIT_RULES,
    DeterminismTaintRule,
    MemoInvalidationRule,
    PickleSafetyRule,
    PublishSafetyRule,
    run_audit,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def findings(write_tree, files, rule):
    report = run_audit([write_tree(files)], rules=[rule])
    return report.violations


# ---------------------------------------------------------------------------
# REP010 — memo-invalidation completeness
# ---------------------------------------------------------------------------


ZONE_HEADER = """\
    from repro.annotations import invalidates


    class Zone:
        # repro: memo(resp: field=_cache, depends=[_rrsets], invalidator=_clear)

        def __init__(self):
            self._rrsets = {}
            self._cache = {}

        @invalidates("resp")
        def _clear(self):
            self._cache.clear()
"""

ANNOTATIONS_STUB = """\
    def invalidates(*memos):
        def wrap(fn):
            return fn
        return wrap
"""


class TestMemoInvalidation:
    rule = MemoInvalidationRule()

    def test_funnelled_mutator_is_clean(self, write_tree):
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER + """\

        def add(self, name, rrset):
            self._rrsets[name] = rrset
            self._clear()
""",
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_direct_storage_clear_is_also_compliant(self, write_tree):
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER + """\

        def add(self, name, rrset):
            self._rrsets[name] = rrset
            self._cache.clear()
""",
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_bug_mutator_without_invalidation(self, write_tree):
        """The PR-6 regression in miniature: a dep write, no clear."""
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER + """\

        def add(self, name, rrset):
            self._rrsets[name] = rrset
""",
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert violation.rule == "REP010"
        assert "Zone._rrsets" in violation.message
        assert "memo 'resp'" in violation.message
        assert violation.path.endswith("zone.py")

    def test_seeded_bug_external_mutator_in_another_module(self, write_tree):
        """Cross-module writes are exactly what the per-file lint misses."""
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER,
            "ops.py": """\
                from repro.zone import Zone


                def poison(zone: Zone):
                    zone._rrsets["evil"] = None
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "repro.ops.poison" in violation.message
        assert violation.path.endswith("ops.py")

    def test_constructor_writes_are_exempt(self, write_tree):
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER,
        }
        # __init__ writes _rrsets without invalidating; that's fine.
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_bug_unknown_field_in_declaration(self, write_tree):
        files = {
            "zone.py": """\
                class Zone:
                    # repro: memo(resp: field=_cache, depends=[_typo], invalidator=none)

                    def __init__(self):
                        self._rrsets = {}
                        self._cache = {}
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "unknown field '_typo'" in violation.message

    def test_seeded_bug_missing_invalidator_method(self, write_tree):
        files = {
            "zone.py": """\
                class Zone:
                    # repro: memo(resp: field=_cache, depends=[_rrsets], invalidator=_gone)

                    def __init__(self):
                        self._rrsets = {}
                        self._cache = {}
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "no such method" in violation.message

    def test_seeded_bug_invalidator_without_decorator(self, write_tree):
        files = {
            "zone.py": """\
                class Zone:
                    # repro: memo(resp: field=_cache, depends=[_rrsets], invalidator=_clear)

                    def __init__(self):
                        self._rrsets = {}
                        self._cache = {}

                    def _clear(self):
                        self._cache.clear()
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "@invalidates" in violation.message

    def test_seeded_bug_invalidator_that_forgets_the_field(self, write_tree):
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": """\
                from repro.annotations import invalidates


                class Zone:
                    # repro: memo(resp: field=_cache, depends=[_rrsets], invalidator=_clear)

                    def __init__(self):
                        self._rrsets = {}
                        self._cache = {}

                    @invalidates("resp")
                    def _clear(self):
                        pass
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "never writes its storage field _cache" in violation.message

    def test_transitive_invalidation_through_a_helper(self, write_tree):
        """Reaching the invalidator indirectly still counts."""
        files = {
            "annotations.py": ANNOTATIONS_STUB,
            "zone.py": ZONE_HEADER + """\

        def add(self, name, rrset):
            self._rrsets[name] = rrset
            self._after_change()

        def _after_change(self):
            self._clear()
""",
        }
        assert findings(write_tree, files, self.rule) == ()


# ---------------------------------------------------------------------------
# REP011 — post-publish copy-on-write mutation
# ---------------------------------------------------------------------------


PUBLISH_BASE = {
    "scenario.py": """\
        class Scenario:
            # repro: published

            def __init__(self):
                self.seed = 7
        """,
    "prepare.py": """\
        def prepare_shared(scenario):
            # repro: publishes
            return scenario
        """,
}


class TestPublishSafety:
    rule = PublishSafetyRule()

    def test_read_only_after_publish_is_clean(self, write_tree):
        files = dict(PUBLISH_BASE)
        files["runner.py"] = """\
            from repro.prepare import prepare_shared


            def describe(scenario):
                return scenario.seed


            def run(scenario):
                prepare_shared(scenario)
                return describe(scenario)
            """
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_bug_mutation_after_publish(self, write_tree):
        files = dict(PUBLISH_BASE)
        files["runner.py"] = """\
            from repro.prepare import prepare_shared
            from repro.scenario import Scenario


            def poison(scenario: Scenario):
                scenario.seed = 99


            def run(scenario):
                prepare_shared(scenario)
                poison(scenario)
            """
        (violation,) = findings(write_tree, files, self.rule)
        assert violation.rule == "REP011"
        assert "after the publish point" in violation.message
        assert "Scenario.seed" in violation.message
        assert violation.path.endswith("runner.py")

    def test_seeded_bug_mutation_through_a_chain(self, write_tree):
        files = dict(PUBLISH_BASE)
        files["runner.py"] = """\
            from repro.prepare import prepare_shared
            from repro.scenario import Scenario


            def deep(scenario: Scenario):
                scenario.seed = 99


            def shallow(scenario: Scenario):
                deep(scenario)


            def run(scenario):
                prepare_shared(scenario)
                shallow(scenario)
            """
        (violation,) = findings(write_tree, files, self.rule)
        assert "chain:" in violation.message

    def test_mutation_before_publish_is_clean(self, write_tree):
        files = dict(PUBLISH_BASE)
        files["runner.py"] = """\
            from repro.prepare import prepare_shared
            from repro.scenario import Scenario


            def tweak(scenario: Scenario):
                scenario.seed = 99


            def run(scenario):
                tweak(scenario)
                prepare_shared(scenario)
            """
        assert findings(write_tree, files, self.rule) == ()

    def test_worker_reference_is_not_a_parent_side_call(self, write_tree):
        """A function handed to the pool runs in workers — exempt."""
        files = dict(PUBLISH_BASE)
        files["runner.py"] = """\
            from repro.prepare import prepare_shared
            from repro.scenario import Scenario


            def worker(scenario: Scenario):
                scenario.seed = 99


            def run(pool, scenario):
                prepare_shared(scenario)
                return pool.map(worker, [scenario])
            """
        assert findings(write_tree, files, self.rule) == ()

    def test_memo_storage_fill_after_publish_is_exempt(self, write_tree):
        """Filling a declared memo field is CoW-safe by design review."""
        files = {
            "scenario.py": """\
                class Scenario:
                    # repro: published
                    # repro: memo(traces: field=_traces, depends=[seed], invalidator=none)

                    def __init__(self):
                        self.seed = 7
                        self._traces = {}
                """,
            "prepare.py": PUBLISH_BASE["prepare.py"],
            "runner.py": """\
                from repro.prepare import prepare_shared
                from repro.scenario import Scenario


                def warm(scenario: Scenario):
                    scenario._traces["TRC1"] = object()


                def run(scenario):
                    prepare_shared(scenario)
                    warm(scenario)
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_published_closure_covers_nested_classes(self, write_tree):
        """Mutating a class reachable *through* a published field flags."""
        files = {
            "scenario.py": """\
                class Hierarchy:
                    def __init__(self):
                        self.zones = []


                class Scenario:
                    # repro: published

                    built: Hierarchy
                """,
            "prepare.py": PUBLISH_BASE["prepare.py"],
            "runner.py": """\
                from repro.prepare import prepare_shared
                from repro.scenario import Hierarchy


                def grow(hierarchy: Hierarchy):
                    hierarchy.zones.append(1)


                def run(scenario):
                    prepare_shared(scenario)
                    grow(scenario.built)
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "Hierarchy.zones" in violation.message


# ---------------------------------------------------------------------------
# REP012 — transitive pickle-safety
# ---------------------------------------------------------------------------


class TestPickleSafety:
    rule = PickleSafetyRule()

    def test_plain_value_spec_is_clean(self, write_tree):
        files = {
            "specs.py": """\
                class ReplaySpec:
                    # repro: pickled-boundary

                    trace_name: str
                    seed: int
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_bug_callable_field(self, write_tree):
        files = {
            "specs.py": """\
                from typing import Callable


                class ReplaySpec:
                    # repro: pickled-boundary

                    trace_name: str
                    on_done: "Callable[[], None] | None"
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert violation.rule == "REP012"
        assert "ReplaySpec.on_done" in violation.message
        assert "Callable" in violation.message

    def test_seeded_bug_unpicklable_in_nested_class(self, write_tree):
        """The walk follows field types into member classes."""
        files = {
            "specs.py": """\
                from threading import Lock


                class Inner:
                    guard: Lock


                class FleetSpec:
                    # repro: pickled-boundary

                    member: Inner
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "FleetSpec.member.guard" in violation.message
        assert "Lock" in violation.message

    def test_custom_reduce_class_is_trusted(self, write_tree):
        files = {
            "specs.py": """\
                from threading import Lock


                class Guarded:
                    guard: Lock

                    def __reduce__(self):
                        return (Guarded, ())


                class ReplaySpec:
                    # repro: pickled-boundary

                    member: Guarded
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_cycles_terminate(self, write_tree):
        files = {
            "specs.py": """\
                class Node:
                    # repro: pickled-boundary

                    parent: "Node | None"
                    label: str
                """,
        }
        assert findings(write_tree, files, self.rule) == ()


# ---------------------------------------------------------------------------
# REP013 — interprocedural determinism taint
# ---------------------------------------------------------------------------


class TestDeterminismTaint:
    rule = DeterminismTaintRule()

    def test_seeded_bug_clock_read_behind_a_helper(self, write_tree):
        """The cross-module leak REP001 cannot see: sim -> util -> clock."""
        files = {
            "util.py": """\
                import time


                def stamp():
                    return time.time()
                """,
            "simulation/engine.py": """\
                from repro.util import stamp


                def step():
                    return stamp()
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert violation.rule == "REP013"
        assert "time.time()" in violation.message
        assert "chain: step -> stamp" in violation.message
        assert violation.path.endswith("simulation/engine.py")

    def test_seeded_bug_unseeded_randomness(self, write_tree):
        files = {
            "util.py": """\
                import random


                def jitter():
                    return random.random()
                """,
            "core/cache.py": """\
                from repro.util import jitter


                def evict():
                    return jitter()
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "random.random()" in violation.message

    def test_taint_outside_sink_modules_is_not_reported(self, write_tree):
        """A clock read in analysis/ tooling is REP001's per-file call."""
        files = {
            "analysis/timing.py": """\
                import time


                def stamp():
                    return time.time()
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_serve_internal_wall_clock_is_clean(self, write_tree):
        """serve/ is not a determinism sink: its wall clock is its job."""
        files = {
            "serve/clock.py": """\
                import time


                def now():
                    return time.time()


                def schedule(delay):
                    return now() + delay
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_core_calling_into_serve_still_flags(self, write_tree):
        """The serve exemption must not launder taint back into core/."""
        files = {
            "serve/clock.py": """\
                import time


                def wall_now():
                    return time.time()
                """,
            "core/cache.py": """\
                from repro.serve.clock import wall_now


                def expire():
                    return wall_now()
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert violation.rule == "REP013"
        assert violation.path.endswith("core/cache.py")
        assert "chain: expire -> wall_now" in violation.message

    def test_suppressed_source_is_sanctioned(self, write_tree):
        """A reviewed # repro: ignore[REP001] sanctions the whole chain."""
        files = {
            "util.py": """\
                import time


                def stamp():
                    return time.time()  # repro: ignore[REP001]
                """,
            "simulation/engine.py": """\
                from repro.util import stamp


                def step():
                    return stamp()
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_rng_construction_is_clean(self, write_tree):
        files = {
            "simulation/engine.py": """\
                import random


                def make_rng(seed):
                    return random.Random(seed)
                """,
        }
        assert findings(write_tree, files, self.rule) == ()

    def test_seeded_bug_os_entropy_rng_construction(self, write_tree):
        files = {
            "simulation/engine.py": """\
                import random


                def make_rng():
                    return random.Random()
                """,
        }
        (violation,) = findings(write_tree, files, self.rule)
        assert "random.Random()" in violation.message


# ---------------------------------------------------------------------------
# Driver-level behaviour and the real tree
# ---------------------------------------------------------------------------


class TestRunAudit:
    def test_inline_suppression_applies_to_audit_findings(self, write_tree):
        files = {
            "util.py": """\
                import time


                def stamp():
                    return time.time()
                """,
            "simulation/engine.py": """\
                from repro.util import stamp


                def step():  # repro: ignore[REP013]
                    return stamp()
                """,
        }
        report = run_audit([write_tree(files)])
        assert report.violations == ()
        assert report.suppressed_count == 1

    def test_report_counts_the_tree(self, write_tree):
        files = {
            "zone.py": """\
                class Zone:
                    # repro: memo(resp: field=_cache, depends=[a], invalidator=none)
                    a: int
                    _cache: dict

                    def peek(self):
                        return self._cache
                """,
        }
        report = run_audit([write_tree(files)])
        assert report.modules == 1
        assert report.classes == 1
        assert report.functions == 1
        assert report.memos == 1
        assert report.clean

    def test_rule_registry_is_complete_and_stable(self):
        assert [rule.rule_id for rule in ALL_AUDIT_RULES] == [
            "REP010", "REP011", "REP012", "REP013",
        ]
        for rule in ALL_AUDIT_RULES:
            assert rule.title
            assert rule.rationale


class TestRealTree:
    def test_the_shipped_tree_audits_clean(self):
        report = run_audit([REPO_ROOT / "src" / "repro"])
        assert report.violations == ()
        # The annotations the audit keys on are actually present.
        assert report.memos >= 10
        assert report.modules >= 50
