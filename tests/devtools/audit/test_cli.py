"""End-to-end tests for the ``repro audit`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.devtools.audit.baseline import Baseline
from repro.devtools.checks import FINDINGS_SCHEMA

CLEAN_TREE = {
    "zone.py": """\
        class Zone:
            # repro: memo(resp: field=_cache, depends=[a], invalidator=none)
            a: int
            _cache: dict
        """,
}

BROKEN_TREE = {
    "util.py": """\
        import time


        def stamp():
            return time.time()
        """,
    "simulation/engine.py": """\
        from repro.util import stamp


        def step():
            return stamp()
        """,
}


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    """Run the CLI from tmp_path so the default baseline lands there."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestAuditCommand:
    def test_clean_tree_exits_zero(self, write_tree, in_tmp, capsys):
        root = write_tree(CLEAN_TREE)
        assert main(["audit", str(root)]) == 0
        out = capsys.readouterr().out
        assert "repro audit: clean" in out
        assert "1 memos" in out

    def test_violation_exits_nonzero(self, write_tree, in_tmp, capsys):
        root = write_tree(BROKEN_TREE)
        assert main(["audit", str(root)]) == 1
        captured = capsys.readouterr()
        assert "REP013" in captured.out
        assert "1 violation(s)" in captured.err

    def test_json_envelope_matches_the_shared_schema(
        self, write_tree, in_tmp, capsys
    ):
        root = write_tree(BROKEN_TREE)
        assert main(["audit", str(root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "repro-audit"
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP013"
        assert set(finding) == {"rule", "path", "line", "message", "fix_hint"}
        assert payload["summary"]["modules"] == 2

    def test_update_baseline_then_rerun_accepts(
        self, write_tree, in_tmp, capsys
    ):
        root = write_tree(BROKEN_TREE)
        assert main(["audit", str(root), "--update-baseline"]) == 0
        baseline_file = in_tmp / "audit-baseline.json"
        assert baseline_file.exists()
        assert len(Baseline.load(baseline_file).entries) == 1
        capsys.readouterr()

        assert main(["audit", str(root)]) == 0
        assert "1 baseline-accepted" in capsys.readouterr().out

    def test_expired_entry_warns_without_strict(
        self, write_tree, in_tmp, capsys
    ):
        broken_root = write_tree(BROKEN_TREE)
        assert main(["audit", str(broken_root), "--update-baseline"]) == 0
        # "Fix" the finding by removing the clock read.
        (broken_root / "util.py").write_text(
            "def stamp():\n    return 0.0\n", encoding="utf-8"
        )
        capsys.readouterr()
        assert main(["audit", str(broken_root)]) == 0
        assert "no longer occurs" in capsys.readouterr().err

    def test_strict_fails_on_expired_entries(self, write_tree, in_tmp, capsys):
        broken_root = write_tree(BROKEN_TREE)
        assert main(["audit", str(broken_root), "--update-baseline"]) == 0
        (broken_root / "util.py").write_text(
            "def stamp():\n    return 0.0\n", encoding="utf-8"
        )
        capsys.readouterr()
        assert main(["audit", str(broken_root), "--strict"]) == 1

    def test_sarif_written_to_file(self, write_tree, in_tmp, capsys):
        root = write_tree(BROKEN_TREE)
        target = in_tmp / "findings.sarif"
        assert main(["audit", str(root), "--sarif", str(target)]) == 1
        log = json.loads(target.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "REP013"

    def test_sarif_to_stdout(self, write_tree, in_tmp, capsys):
        root = write_tree(CLEAN_TREE)
        assert main(["audit", str(root), "--sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        driver = log["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == [
            "REP010", "REP011", "REP012", "REP013",
        ]

    def test_list_rules(self, in_tmp, capsys):
        assert main(["audit", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP010", "REP011", "REP012", "REP013"):
            assert rule_id in out

    def test_not_a_directory_is_usage_error(self, in_tmp, capsys):
        assert main(["audit", str(in_tmp / "nope")]) == 2
        assert "not a package root" in capsys.readouterr().err
