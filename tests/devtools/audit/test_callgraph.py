"""Tests for the conservative name-resolution call graph."""

from repro.devtools.audit.callgraph import CallGraph
from repro.devtools.audit.project import ProjectIndex


def graph_over(write_tree, files) -> CallGraph:
    return CallGraph(ProjectIndex.build([write_tree(files)]))


class TestResolution:
    def test_module_level_function_call(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                def helper():
                    return 1


                def caller():
                    return helper()
                """,
        })
        assert "repro.mod.helper" in graph.edges["repro.mod.caller"]

    def test_cross_module_import_call(self, write_tree):
        graph = graph_over(write_tree, {
            "a.py": "def helper():\n    return 1\n",
            "b.py": """\
                from repro.a import helper


                def caller():
                    return helper()
                """,
        })
        assert "repro.a.helper" in graph.edges["repro.b.caller"]

    def test_self_method_call(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                class Zone:
                    def lookup(self):
                        return self._miss()

                    def _miss(self):
                        return None
                """,
        })
        assert "repro.mod.Zone._miss" in graph.edges["repro.mod.Zone.lookup"]

    def test_typed_field_receiver(self, write_tree):
        """``self.entry.touch()`` resolves through the field annotation."""
        graph = graph_over(write_tree, {
            "mod.py": """\
                class Entry:
                    def touch(self):
                        return None


                class Cache:
                    entry: Entry

                    def hit(self):
                        return self.entry.touch()
                """,
        })
        assert "repro.mod.Entry.touch" in graph.edges["repro.mod.Cache.hit"]

    def test_dict_get_receiver(self, write_tree):
        """``self._entries.get(k).touch()`` sees the dict value type."""
        graph = graph_over(write_tree, {
            "mod.py": """\
                class Entry:
                    def touch(self):
                        return None


                class Cache:
                    _entries: dict[str, Entry]

                    def hit(self, key):
                        found = self._entries.get(key)
                        return found.touch()
                """,
        })
        assert "repro.mod.Entry.touch" in graph.edges["repro.mod.Cache.hit"]

    def test_constructor_call_reaches_init(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                class Entry:
                    def __init__(self):
                        self.count = 0


                def build():
                    return Entry()
                """,
        })
        assert "repro.mod.Entry.__init__" in graph.edges["repro.mod.build"]

    def test_super_call_resolves_through_bases(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                class Base:
                    def setup(self):
                        return 1


                class Child(Base):
                    def setup(self):
                        return super().setup()
                """,
        })
        assert "repro.mod.Base.setup" in graph.edges["repro.mod.Child.setup"]


class TestReferences:
    def test_function_passed_as_argument_is_a_reference(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                def work(item):
                    return item


                def fan_out(pool, items):
                    return pool.map(work, items)
                """,
        })
        sites = graph.sites["repro.mod.fan_out"]
        refs = [s for s in sites if s.callee == "repro.mod.work"]
        assert refs and all(site.is_reference for site in refs)

    def test_direct_call_is_not_a_reference(self, write_tree):
        graph = graph_over(write_tree, {
            "mod.py": """\
                def helper():
                    return 1


                def caller():
                    return helper()
                """,
        })
        sites = [s for s in graph.sites["repro.mod.caller"]
                 if s.callee == "repro.mod.helper"]
        assert sites and not sites[0].is_reference

    def test_references_still_count_as_edges(self, write_tree):
        """Taint/mutation closure must flow through handed-off functions."""
        graph = graph_over(write_tree, {
            "mod.py": """\
                def work(item):
                    return item


                def fan_out(pool, items):
                    return pool.map(work, items)
                """,
        })
        assert "repro.mod.work" in graph.reachable_from("repro.mod.fan_out")


class TestReachability:
    FILES = {
        "mod.py": """\
            def a():
                return b()


            def b():
                return c()


            def c():
                return 1


            def island():
                return 2
            """,
    }

    def test_reachable_from_is_transitive(self, write_tree):
        graph = graph_over(write_tree, self.FILES)
        reachable = graph.reachable_from("repro.mod.a")
        assert "repro.mod.c" in reachable
        assert "repro.mod.island" not in reachable

    def test_callers_is_the_reverse_map(self, write_tree):
        graph = graph_over(write_tree, self.FILES)
        assert "repro.mod.b" in graph.callers["repro.mod.c"]

    def test_path_renders_the_chain(self, write_tree):
        graph = graph_over(write_tree, self.FILES)
        assert graph.path("repro.mod.a", "repro.mod.c") == (
            "repro.mod.a", "repro.mod.b", "repro.mod.c",
        )
