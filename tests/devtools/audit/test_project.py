"""Tests for the project-wide symbol table (``ProjectIndex``)."""

from repro.devtools.audit.project import OPAQUE, ProjectIndex


class TestIndexing:
    def test_classes_and_functions_get_qualified_names(self, write_tree):
        root = write_tree({
            "core/cache.py": """\
                class Cache:
                    def get(self, key):
                        return None


                def helper():
                    return 1
                """,
        })
        index = ProjectIndex.build([root])
        assert "repro.core.cache.Cache" in index.classes
        assert "repro.core.cache.Cache.get" in index.functions
        assert "repro.core.cache.helper" in index.functions

    def test_package_name_is_the_root_directory_name(self, write_tree):
        root = write_tree({"mod.py": "class Thing:\n    pass\n"},
                          package="otherpkg")
        index = ProjectIndex.build([root])
        assert "otherpkg.mod.Thing" in index.classes

    def test_init_module_drops_the_suffix(self, write_tree):
        root = write_tree({"sub/__init__.py": "VALUE = 1\n"})
        index = ProjectIndex.build([root])
        assert "repro.sub" in index.modules


class TestFieldInference:
    def test_class_body_annotations_become_fields(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Entry:
                    rank: int
                    label: str
                """,
        })
        cls = ProjectIndex.build([root]).classes["repro.mod.Entry"]
        assert set(cls.fields) == {"rank", "label"}

    def test_init_self_assignments_become_fields(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Entry:
                    def __init__(self, rank):
                        self.rank = rank
                        self._cache = {}
                """,
        })
        cls = ProjectIndex.build([root]).classes["repro.mod.Entry"]
        assert "rank" in cls.fields
        assert "_cache" in cls.fields

    def test_field_type_resolves_project_classes(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Inner:
                    pass


                class Outer:
                    inner: Inner
                    table: dict[str, Inner]
                """,
        })
        index = ProjectIndex.build([root])
        outer = index.classes["repro.mod.Outer"]
        assert outer.field_type("inner", index).name == "repro.mod.Inner"
        table = outer.field_type("table", index)
        assert table.kind == "dict"
        assert table.value_type().name == "repro.mod.Inner"
        assert outer.field_type("missing", index) is OPAQUE

    def test_annotation_names_capture_every_identifier(self, write_tree):
        root = write_tree({
            "mod.py": """\
                from typing import Callable


                class Spec:
                    hook: "Callable[[], None] | None"
                """,
        })
        cls = ProjectIndex.build([root]).classes["repro.mod.Spec"]
        assert "Callable" in cls.fields["hook"].annotation_names


class TestMarkersAndDecorators:
    def test_memo_markers_attach_to_the_enclosing_class(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Zone:
                    # repro: memo(resp: field=_cache, depends=[a], invalidator=none)
                    a: int
                    _cache: dict
                """,
        })
        cls = ProjectIndex.build([root]).classes["repro.mod.Zone"]
        assert len(cls.memos) == 1
        assert cls.memos[0].name == "resp"

    def test_published_and_boundary_markers(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Shared:
                    # repro: published
                    pass


                class Spec:
                    # repro: pickled-boundary
                    pass
                """,
        })
        index = ProjectIndex.build([root])
        assert index.classes["repro.mod.Shared"].published
        assert index.classes["repro.mod.Spec"].pickled_boundary
        assert not index.classes["repro.mod.Spec"].published

    def test_invalidates_decorator_strings_are_extracted(self, write_tree):
        root = write_tree({
            "mod.py": """\
                from repro.annotations import invalidates


                class Zone:
                    @invalidates("resp", "sections")
                    def clear(self):
                        self._cache = None
                """,
        })
        fn = ProjectIndex.build([root]).functions["repro.mod.Zone.clear"]
        assert fn.invalidates == ("resp", "sections")

    def test_publishes_marker_inside_function_body(self, write_tree):
        root = write_tree({
            "mod.py": """\
                def prepare():
                    # repro: publishes
                    return 1
                """,
        })
        fn = ProjectIndex.build([root]).functions["repro.mod.prepare"]
        assert fn.publishes

    def test_custom_reduce_is_detected(self, write_tree):
        root = write_tree({
            "mod.py": """\
                class Wire:
                    def __reduce__(self):
                        return (Wire, ())
                """,
        })
        cls = ProjectIndex.build([root]).classes["repro.mod.Wire"]
        assert cls.has_custom_reduce


class TestResolution:
    def test_imported_names_resolve_across_modules(self, write_tree):
        root = write_tree({
            "a.py": "class Thing:\n    pass\n",
            "b.py": "from repro.a import Thing\n",
        })
        index = ProjectIndex.build([root])
        assert index.resolve("repro.b", "Thing") == "repro.a.Thing"

    def test_source_for_maps_back_to_the_module(self, write_tree):
        root = write_tree({"mod.py": "class Thing:\n    pass\n"})
        index = ProjectIndex.build([root])
        source = index.source_for("repro.mod.Thing")
        assert source is not None
        assert source.display_path.endswith("mod.py")
