"""Tests for SARIF 2.1.0 rendering of audit findings."""

import json

from repro.devtools.audit.sarif import SARIF_VERSION, render_sarif, to_sarif
from repro.devtools.checks import Violation

RULES = [
    ("REP010", "memo mutators must invalidate", "stale caches are bugs"),
    ("REP011", "no post-publish mutation", "CoW divergence"),
]

FINDING = Violation(
    rule="REP010",
    path="src/repro/dns/zone.py",
    line=42,
    message="Zone.add mutates _rrsets without invalidating",
    fix_hint="call self._invalidate_response_cache()",
)


class TestToSarif:
    def test_top_level_shape(self):
        log = to_sarif([FINDING], RULES)
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1

    def test_driver_lists_every_rule_even_when_clean(self):
        log = to_sarif([], RULES)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-audit"
        assert [r["id"] for r in driver["rules"]] == ["REP010", "REP011"]
        assert log["runs"][0]["results"] == []

    def test_result_location_targets_github_code_scanning(self):
        log = to_sarif([FINDING], RULES)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "REP010"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == FINDING.path
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] == 42

    def test_fix_hint_is_appended_to_the_message(self):
        log = to_sarif([FINDING], RULES)
        text = log["runs"][0]["results"][0]["message"]["text"]
        assert FINDING.message in text
        assert "Fix: call self._invalidate_response_cache()." in text

    def test_line_zero_findings_clamp_to_one(self):
        """SARIF regions are 1-based; whole-file findings use line 1."""
        whole_file = Violation(rule="REP012", path="p.py", line=0, message="m")
        log = to_sarif([whole_file], RULES)
        region = (
            log["runs"][0]["results"][0]["locations"][0]
            ["physicalLocation"]["region"]
        )
        assert region["startLine"] == 1


class TestRenderSarif:
    def test_renders_parseable_json_with_trailing_newline(self):
        rendered = render_sarif([FINDING], RULES)
        assert rendered.endswith("\n")
        assert json.loads(rendered)["version"] == SARIF_VERSION

    def test_tool_name_is_overridable(self):
        rendered = render_sarif([], RULES, tool_name="repro-check")
        parsed = json.loads(rendered)
        assert parsed["runs"][0]["tool"]["driver"]["name"] == "repro-check"
