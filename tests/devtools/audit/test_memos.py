"""Tests for the ``# repro:`` annotation grammar and marker scanner."""

import textwrap

import pytest

from repro.devtools.audit.memos import (
    MemoDeclError,
    NO_INVALIDATOR,
    parse_memo_decls,
    scan_marker_lines,
)


def markers_of(source: str) -> dict:
    return scan_marker_lines(textwrap.dedent(source))


class TestMarkerScanning:
    def test_single_line_marker(self):
        markers = markers_of("""\
            class Zone:
                # repro: memo(response: field=_cache, depends=[a], invalidator=none)
                pass
            """)
        assert markers == {
            2: "memo(response: field=_cache, depends=[a], invalidator=none)"
        }

    def test_continuation_lines_merge_until_parens_balance(self):
        markers = markers_of("""\
            class Zone:
                # repro: memo(response: field=_cache,
                #   depends=[a, b, c],
                #   invalidator=_clear)
                pass
            """)
        assert markers == {
            2: (
                "memo(response: field=_cache, depends=[a, b, c], "
                "invalidator=_clear)"
            )
        }

    def test_marker_text_inside_docstring_is_not_a_marker(self):
        """The scanner tokenizes: prose quoting the grammar never parses."""
        markers = markers_of('''\
            def explain():
                """The grammar is # repro: memo(broken syntax here."""
                return 1
            ''')
        assert markers == {}

    def test_marker_text_inside_string_literal_is_not_a_marker(self):
        markers = markers_of("""\
            EXAMPLE = "# repro: published"
            """)
        assert markers == {}

    def test_ignore_suppressions_are_filtered_out(self):
        markers = markers_of("""\
            import time
            now = time.time()  # repro: ignore[REP001]
            # repro: published
            """)
        assert markers == {3: "published"}

    def test_bare_markers_pass_through(self):
        markers = markers_of("""\
            class Spec:
                # repro: pickled-boundary
                pass
            """)
        assert markers == {2: "pickled-boundary"}

    def test_unterminated_continuation_stops_at_non_comment(self):
        markers = markers_of("""\
            # repro: memo(response: field=_cache,
            x = 1
            """)
        # The body stays unbalanced; parse_memo_decls rejects it loudly.
        with pytest.raises(MemoDeclError):
            parse_memo_decls(markers)

    def test_syntactically_broken_source_yields_no_markers(self):
        assert scan_marker_lines("def broken(:\n") == {}


class TestMemoDeclParsing:
    def test_fields_and_lineno(self):
        decls = parse_memo_decls({
            7: "memo(response: field=_cache, depends=[a, b], "
               "invalidator=_clear)"
        })
        (decl,) = decls
        assert decl.name == "response"
        assert decl.field == "_cache"
        assert decl.depends == ("a", "b")
        assert decl.invalidator == "_clear"
        assert decl.lineno == 7
        assert decl.has_invalidator

    def test_invalidator_none_means_fill_only(self):
        (decl,) = parse_memo_decls({
            1: "memo(m: field=_f, depends=[x], invalidator=none)"
        })
        assert decl.invalidator == NO_INVALIDATOR
        assert not decl.has_invalidator

    def test_non_memo_markers_are_skipped(self):
        assert parse_memo_decls({1: "published", 2: "publishes"}) == ()

    def test_malformed_memo_raises(self):
        with pytest.raises(MemoDeclError, match="malformed memo"):
            parse_memo_decls({3: "memo(missing_the_field_part)"})

    def test_missing_depends_raises(self):
        with pytest.raises(MemoDeclError):
            parse_memo_decls({1: "memo(m: field=_f, invalidator=none)"})
