"""Tests for the analytical IRR-availability model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.model import (
    SchemeModel,
    predict_cached_zone_count,
    renewal_cached_fraction,
    refresh_cached_fraction,
    vanilla_cached_fraction,
)
from repro.dns.name import Name

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
ttls = st.floats(min_value=1.0, max_value=7 * 86400.0, allow_nan=False)


class TestFormulas:
    def test_vanilla_known_value(self):
        # lam*ttl = 1 -> 1/2
        assert vanilla_cached_fraction(1 / 3600, 3600) == pytest.approx(0.5)

    def test_refresh_known_value(self):
        assert refresh_cached_fraction(1 / 3600, 3600) == pytest.approx(
            1 - math.exp(-1)
        )

    def test_renewal_zero_credit_equals_refresh(self):
        assert renewal_cached_fraction(0.001, 600, 0) == pytest.approx(
            refresh_cached_fraction(0.001, 600)
        )

    def test_zero_rate(self):
        assert vanilla_cached_fraction(0.0, 3600) == 0.0
        assert refresh_cached_fraction(0.0, 3600) == 0.0

    @pytest.mark.parametrize("func", [vanilla_cached_fraction,
                                      refresh_cached_fraction])
    def test_invalid_inputs(self, func):
        with pytest.raises(ValueError):
            func(-1.0, 3600)
        with pytest.raises(ValueError):
            func(0.1, 0.0)

    def test_negative_credit_rejected(self):
        with pytest.raises(ValueError):
            renewal_cached_fraction(0.1, 60, -1)


class TestFormulaProperties:
    @given(rates, ttls)
    def test_all_fractions_are_probabilities(self, lam, ttl):
        for value in (
            vanilla_cached_fraction(lam, ttl),
            refresh_cached_fraction(lam, ttl),
            renewal_cached_fraction(lam, ttl, 3),
        ):
            assert 0.0 <= value <= 1.0

    @given(rates, ttls)
    def test_scheme_ordering(self, lam, ttl):
        # The paper's ordering falls out of the formulas: refresh beats
        # vanilla, renewal beats refresh.
        vanilla = vanilla_cached_fraction(lam, ttl)
        refresh = refresh_cached_fraction(lam, ttl)
        renewal = renewal_cached_fraction(lam, ttl, 3)
        assert refresh >= vanilla - 1e-12
        assert renewal >= refresh - 1e-12

    @given(rates, ttls, ttls)
    def test_monotone_in_ttl(self, lam, ttl_a, ttl_b):
        low, high = sorted((ttl_a, ttl_b))
        assert refresh_cached_fraction(lam, high) >= \
            refresh_cached_fraction(lam, low) - 1e-12

    @given(rates, ttls, st.floats(min_value=0, max_value=10))
    def test_monotone_in_credit(self, lam, ttl, credit):
        assert renewal_cached_fraction(lam, ttl, credit + 1) >= \
            renewal_cached_fraction(lam, ttl, credit) - 1e-12


class TestSchemeModel:
    def test_ttl_override(self):
        model = SchemeModel("x", "refresh", ttl_override=7200.0)
        assert model.cached_fraction(0.001, 60.0) == pytest.approx(
            refresh_cached_fraction(0.001, 7200.0)
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SchemeModel("x", "magic").cached_fraction(0.1, 60)

    def test_predict_cached_zone_count(self):
        model = SchemeModel("x", "refresh")
        zones = {Name.from_text(f"z{i}.test"): 0.001 for i in range(4)}
        ttls = {zone: 3600.0 for zone in zones}
        expected = 4 * refresh_cached_fraction(0.001, 3600.0)
        assert predict_cached_zone_count(model, zones, ttls) == \
            pytest.approx(expected)

    def test_predict_skips_unknown_ttls(self):
        model = SchemeModel("x", "refresh")
        zones = {Name.from_text("a.test"): 0.1, Name.from_text("b.test"): 0.1}
        ttls = {Name.from_text("a.test"): 3600.0}
        assert predict_cached_zone_count(model, zones, ttls) == \
            pytest.approx(refresh_cached_fraction(0.1, 3600.0))
