"""Tests for time-gap tracking (Figure 3)."""

import pytest

from repro.analysis.gaps import DAY, GapSample, GapTracker
from repro.dns.name import Name

ZONE = Name.from_text("x.test")


class TestGapSample:
    def test_day_conversion(self):
        sample = GapSample(ZONE, gap_seconds=2 * DAY, published_ttl=3600.0)
        assert sample.gap_days == 2.0

    def test_ttl_fraction(self):
        sample = GapSample(ZONE, gap_seconds=7200.0, published_ttl=3600.0)
        assert sample.gap_as_ttl_fraction == 2.0

    def test_zero_ttl_gives_infinite_fraction(self):
        sample = GapSample(ZONE, gap_seconds=10.0, published_ttl=0.0)
        assert sample.gap_as_ttl_fraction == float("inf")


class TestGapTracker:
    def test_collects_via_call(self):
        tracker = GapTracker()
        tracker(ZONE, 100.0, 50.0)
        tracker(ZONE, 200.0, 50.0)
        assert len(tracker) == 2

    def test_negative_gap_rejected(self):
        tracker = GapTracker()
        with pytest.raises(ValueError):
            tracker(ZONE, -1.0, 50.0)

    def test_cdfs(self):
        tracker = GapTracker()
        tracker(ZONE, 1 * DAY, DAY / 2)  # 1 day gap, fraction 2
        tracker(ZONE, 3 * DAY, DAY)      # 3 day gap, fraction 3
        assert tracker.cdf_days().probability_at_or_below(1.0) == 0.5
        assert tracker.cdf_ttl_fraction().probability_at_or_below(2.0) == 0.5

    def test_fraction_below_days(self):
        tracker = GapTracker()
        tracker(ZONE, 1 * DAY, 100.0)
        tracker(ZONE, 10 * DAY, 100.0)
        assert tracker.fraction_below_days(5.0) == 0.5
