"""Unit + property tests for empirical CDFs."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import Cdf


class TestCdf:
    def test_probability_at_or_below(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at_or_below(0.5) == 0.0
        assert cdf.probability_at_or_below(2.0) == 0.5
        assert cdf.probability_at_or_below(10.0) == 1.0

    def test_empty_cdf(self):
        cdf = Cdf.from_samples([])
        assert cdf.probability_at_or_below(5.0) == 0.0
        assert cdf.mean() == 0.0
        with pytest.raises(ValueError):
            cdf.percentile(0.5)

    def test_percentile(self):
        cdf = Cdf.from_samples(range(1, 101))
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(0.0) == 1
        assert cdf.percentile(1.0) == 100

    def test_percentile_bounds(self):
        cdf = Cdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_evaluate_produces_series(self):
        cdf = Cdf.from_samples([1.0, 2.0])
        series = cdf.evaluate([0.0, 1.0, 3.0])
        assert series == [(0.0, 0.0), (1.0, 0.5), (3.0, 1.0)]

    def test_mean(self):
        assert Cdf.from_samples([1.0, 3.0]).mean() == 2.0


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100))
    def test_monotone_and_bounded(self, samples):
        cdf = Cdf.from_samples(samples)
        points = sorted(set(samples))
        previous = 0.0
        for point in points:
            probability = cdf.probability_at_or_below(point)
            assert 0.0 <= probability <= 1.0
            assert probability >= previous
            previous = probability
        assert cdf.probability_at_or_below(max(samples)) == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                    min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0))
    def test_percentile_is_a_sample(self, samples, fraction):
        cdf = Cdf.from_samples(samples)
        assert cdf.percentile(fraction) in samples
