"""Tests for text rendering of tables and series."""

import pytest

from repro.analysis.report import (
    format_percent,
    format_table,
    render_failure_block,
    render_series,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(("a", "b"), [(1, "xx"), (22, "y")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert lines[2].split() == ["1", "xx"]
        assert lines[3].split() == ["22", "y"]

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_width_adapts_to_content(self):
        text = format_table(("h",), [("a-very-long-cell",)])
        header_line = text.splitlines()[0]
        assert len(header_line) <= len("a-very-long-cell")


class TestSeries:
    def test_render_series(self):
        text = render_series("S", [(1.0, 0.5)], x_name="d", y_name="cdf")
        assert "S [d -> cdf]:" in text
        assert "(1, 0.500)" in text

    def test_scale_applied(self):
        text = render_series("S", [(1.0, 0.5)], y_scale=100, precision=1)
        assert "(1, 50.0)" in text

    def test_format_percent(self):
        assert format_percent(0.0316) == "3.2 %"
        assert format_percent(0.5, precision=0) == "50 %"

    def test_render_failure_block(self):
        rows = {"TRC1": {"3 h": 0.5, "6 h": 0.6}}
        text = render_failure_block("T", rows, ["3 h", "6 h"])
        assert "TRC1" in text
        assert "50.0 %" in text and "60.0 %" in text

    def test_render_failure_block_missing_cell_is_zero(self):
        rows = {"TRC1": {"3 h": 0.5}}
        text = render_failure_block("T", rows, ["3 h", "6 h"])
        assert "0.0 %" in text
