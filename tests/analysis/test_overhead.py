"""Tests for message/memory overhead accounting."""

import pytest

from repro.analysis.overhead import (
    ESTIMATED_BYTES_PER_RECORD,
    MemoryOverheadSeries,
    MessageOverheadTable,
)
from repro.simulation.metrics import MemorySample, ReplayMetrics

DAY = 86400.0


def metrics_with_queries(count):
    metrics = ReplayMetrics()
    for _ in range(count):
        metrics.record_cs_query(0.0, failed=False)
    return metrics


class TestMessageOverheadTable:
    def test_add_and_read(self):
        table = MessageOverheadTable(baseline=metrics_with_queries(100))
        overhead = table.add_scheme("renewal", metrics_with_queries(176))
        assert overhead == pytest.approx(0.76)
        assert table.overhead_of("renewal") == pytest.approx(0.76)

    def test_negative_overhead_for_fewer_messages(self):
        table = MessageOverheadTable(baseline=metrics_with_queries(100))
        assert table.add_scheme("long-ttl", metrics_with_queries(90)) == \
            pytest.approx(-0.10)

    def test_as_rows_formats_signs(self):
        table = MessageOverheadTable(baseline=metrics_with_queries(100))
        table.add_scheme("up", metrics_with_queries(150))
        table.add_scheme("down", metrics_with_queries(50))
        rows = dict(table.as_rows())
        assert rows["up"] == "+50.0 %"
        assert rows["down"] == "-50.0 %"


def series(label, values, spacing=DAY / 4):
    samples = [
        MemorySample(time=index * spacing, zones_cached=value // 10,
                     records_cached=value)
        for index, value in enumerate(values)
    ]
    return MemoryOverheadSeries(label=label, samples=samples)


class TestMemoryOverheadSeries:
    def test_peaks(self):
        entry = series("x", [10, 50, 30])
        assert entry.peak_records() == 50
        assert entry.peak_zones() == 5

    def test_empty_series(self):
        entry = MemoryOverheadSeries("empty", [])
        assert entry.peak_records() == 0
        assert entry.steady_state_mean_records() == 0.0

    def test_steady_state_excludes_warmup(self):
        # 16 samples at 6 h spacing: first 8 cover days 0-2 (warm-up).
        entry = series("x", [0] * 8 + [100] * 8)
        assert entry.steady_state_mean_records(after_days=2.0) == 100.0

    def test_series_in_days(self):
        entry = series("x", [1, 2], spacing=DAY)
        assert entry.records_series() == [(0.0, 1), (1.0, 2)]
        assert entry.zones_series()[1][0] == 1.0

    def test_estimated_bytes(self):
        entry = series("x", [1000])
        assert entry.estimated_peak_bytes() == 1000 * ESTIMATED_BYTES_PER_RECORD

    def test_occupancy_ratio(self):
        base = series("DNS", [0] * 8 + [100] * 8)
        enhanced = series("combo", [0] * 8 + [250] * 8)
        assert enhanced.occupancy_ratio_vs(base) == pytest.approx(2.5)

    def test_ratio_against_empty_baseline_raises(self):
        base = MemoryOverheadSeries("DNS", [])
        enhanced = series("combo", [1, 2])
        with pytest.raises(ValueError):
            enhanced.occupancy_ratio_vs(base)
