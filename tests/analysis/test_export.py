"""Tests for CSV export of experiment artifacts."""

import csv

from repro.analysis.cdf import Cdf
from repro.analysis.export import (
    cdf_rows,
    csv_text,
    failure_grid_rows,
    memory_series_rows,
    overhead_rows,
    write_csv,
)
from repro.analysis.overhead import MemoryOverheadSeries
from repro.experiments.attack_grid import FailureGrid
from repro.simulation.metrics import MemorySample


def make_grid():
    grid = FailureGrid(title="T", columns=("3 h", "6 h"))
    grid.record("TRC1", "3 h", 0.5, 0.9)
    grid.record("TRC1", "6 h", 0.6, 0.95)
    grid.record("TRC2", "3 h", 0.4, 0.85)
    return grid


class TestExport:
    def test_csv_text_roundtrip(self):
        text = csv_text(("a", "b"), [(1, 2), (3, 4)])
        parsed = list(csv.reader(text.splitlines()))
        assert parsed == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ("x",), [(1,), (2,)])
        assert path.read_text().splitlines() == ["x", "1", "2"]

    def test_failure_grid_rows(self):
        headers, rows = failure_grid_rows(make_grid())
        assert headers[0] == "trace"
        assert ("TRC1", "3 h", "0.500000", "0.900000") in rows
        # TRC2 has no 6 h cell: skipped, not fabricated.
        assert len(rows) == 3

    def test_cdf_rows(self):
        cdf = Cdf.from_samples([1.0, 2.0])
        headers, rows = cdf_rows(cdf, [1.0, 3.0])
        assert rows == [("1", "0.500000"), ("3", "1.000000")]

    def test_memory_series_rows(self):
        series = {
            "DNS": MemoryOverheadSeries(
                "DNS", [MemorySample(86400.0, 5, 50)]
            )
        }
        headers, rows = memory_series_rows(series)
        assert rows == [("DNS", "1.0000", 5, 50)]

    def test_overhead_rows(self):
        headers, rows = overhead_rows({"Refresh": -0.05})
        assert rows == [("Refresh", "-0.050000")]

    def test_grid_csv_is_parseable_end_to_end(self, tmp_path):
        headers, rows = failure_grid_rows(make_grid())
        path = tmp_path / "grid.csv"
        write_csv(path, headers, rows)
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0]["trace"] == "TRC1"
        assert float(parsed[0]["sr_failure_rate"]) == 0.5
