"""The experiment registry: specs, CLI generation, and equivalence."""

import argparse
import dataclasses

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.attack_grid import AttackGridSpec, run_duration_grid
from repro.experiments.churn import ChurnSpec
from repro.experiments.latency import LatencySpec
from repro.experiments.registry import (
    ExperimentDef,
    add_spec_arguments,
    resolve_scale,
    spec_from_args,
)
from repro.experiments.scenarios import Scale, make_scenario
from repro.core.schemes import parse_scheme

EXPECTED_NAMES = {
    "amplification", "attack-grid", "churn", "degradation", "dnssec",
    "latency", "maxdamage", "multiseed", "poisoning", "renewal2",
}


class TestRegistryContents:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_NAMES

    def test_entries_are_well_formed(self):
        for name, definition in EXPERIMENTS.items():
            assert definition.name == name
            assert definition.help
            assert dataclasses.is_dataclass(definition.spec_type)
            assert definition.spec_type.__dataclass_params__.frozen
            assert callable(definition.runner)
            # Every spec is constructible with no arguments (defaults).
            assert definition.spec_type() == definition.spec_type()

    def test_run_rejects_mismatched_spec(self):
        with pytest.raises(TypeError):
            EXPERIMENTS["churn"].run(LatencySpec())


class TestCliGeneration:
    def parser_for(self, spec_type):
        parser = argparse.ArgumentParser()
        add_spec_arguments(parser, spec_type)
        return parser

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_default_args_round_trip_to_default_spec(self, name):
        definition = EXPERIMENTS[name]
        parser = self.parser_for(definition.spec_type)
        args = parser.parse_args([])
        assert spec_from_args(definition.spec_type, args) == definition.spec_type()

    def test_churn_flags(self):
        parser = self.parser_for(ChurnSpec)
        args = parser.parse_args(
            ["--seed", "11", "--churn-fraction", "0.5", "--no-decommission-old"]
        )
        spec = spec_from_args(ChurnSpec, args)
        assert spec == ChurnSpec(seed=11, churn_fraction=0.5,
                                 decommission_old=False)

    def test_scale_and_tuple_flags(self):
        parser = self.parser_for(AttackGridSpec)
        args = parser.parse_args(
            ["--scale", "small", "--durations-hours", "3,6", "--scheme",
             "refresh"]
        )
        spec = spec_from_args(AttackGridSpec, args)
        assert spec.scale is Scale.SMALL
        assert spec.durations_hours == (3, 6)
        assert spec.scheme == "refresh"

    def test_optional_int_flag(self):
        parser = self.parser_for(AttackGridSpec)
        assert spec_from_args(AttackGridSpec,
                              parser.parse_args([])).trace_limit is None
        spec = spec_from_args(AttackGridSpec,
                              parser.parse_args(["--trace-limit", "2"]))
        assert spec.trace_limit == 2

    def test_config_object_fields_are_not_cli_flags(self):
        parser = self.parser_for(ChurnSpec)
        with pytest.raises(SystemExit):
            parser.parse_args(["--hierarchy", "x"])


class TestResolveScale:
    def test_explicit_scale_wins(self):
        assert resolve_scale(Scale.SMALL) is Scale.SMALL

    def test_none_falls_back_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale(None) is Scale.TINY
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale(None) is Scale.SMALL


class TestRunEquivalence:
    def test_spec_run_matches_legacy_call(self):
        """run(spec) is a pure re-plumbing of the legacy entry point."""
        spec = AttackGridSpec(scale=Scale.TINY, trace_limit=1,
                              durations_hours=(3,))
        via_registry = EXPERIMENTS["attack-grid"].run(spec)
        scenario = make_scenario(Scale.TINY, seed=7)
        config = parse_scheme("vanilla")
        legacy = run_duration_grid(
            scenario, config,
            title=f"Attack durations — {config.label}",
            durations_hours=(3,), trace_limit=1,
        )
        assert via_registry.sr == legacy.sr
        assert via_registry.cs == legacy.cs
        assert via_registry.columns == legacy.columns

    def test_default_run_builds_default_spec(self):
        definition = ExperimentDef(
            name="probe", help="probe", spec_type=ChurnSpec,
            runner=lambda spec: spec,
        )
        assert definition.run() == ChurnSpec()
