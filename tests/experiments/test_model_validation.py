"""Tests for the model-vs-simulation validation experiment."""

import pytest

from repro.experiments.model_validation import model_validation
from repro.experiments.scenarios import Scale, make_scenario


@pytest.fixture(scope="module")
def result():
    return model_validation(make_scenario(Scale.TINY))


class TestModelValidation:
    def test_reasonable_agreement(self, result):
        # Steady-state Poisson model vs diurnal simulation: within 35 %.
        for row in result.rows:
            assert row.relative_error < 0.35, row.scheme

    def test_model_reproduces_scheme_ordering(self, result):
        predicted = [row.predicted for row in result.rows]
        measured = [row.measured for row in result.rows]
        # vanilla < refresh < renewal <= long-ttl in both columns.
        assert predicted == sorted(predicted)
        assert measured == sorted(measured)

    def test_render(self, result):
        text = result.render()
        assert "Analytical model" in text and "Rel. error" in text

    def test_unknown_scheme(self, result):
        with pytest.raises(KeyError):
            result.row("nope")
