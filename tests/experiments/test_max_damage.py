"""Tests for the maximum-damage attack explorer."""

import pytest

from repro.dns.name import root_name
from repro.experiments.max_damage import (
    _max_damage_experiment,
    greedy_targets,
    random_targets,
    upcoming_query_counts,
)
from repro.experiments.scenarios import Scale, make_scenario

DAY = 86400.0
HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestUpcomingQueryCounts:
    def test_root_sees_every_query(self, scenario):
        trace = scenario.trace("TRC1")
        start, end = 6 * DAY, 6 * DAY + 6 * HOUR
        counts = upcoming_query_counts(trace, scenario, start, end)
        window_size = len(trace.slice_window(start, end))
        assert counts[root_name()] == window_size

    def test_tld_counts_dominate_slds(self, scenario):
        trace = scenario.trace("TRC1")
        counts = upcoming_query_counts(trace, scenario, 6 * DAY,
                                       6 * DAY + 6 * HOUR)
        top_tld = max(
            counts.get(tld, 0) for tld in scenario.built.tree.tld_names()
        )
        top_sld = max(
            count for zone, count in counts.items() if zone.depth() == 2
        )
        assert top_tld >= top_sld


class TestTargetSelection:
    def test_greedy_respects_budget(self, scenario):
        trace = scenario.trace("TRC1")
        targets = greedy_targets(trace, scenario, 5, 6 * DAY, 6 * DAY + 6 * HOUR)
        assert len(targets) == 5
        assert targets[0] == root_name()  # root transits everything

    def test_greedy_can_exclude_root(self, scenario):
        trace = scenario.trace("TRC1")
        targets = greedy_targets(trace, scenario, 5, 6 * DAY,
                                 6 * DAY + 6 * HOUR, include_root=False)
        assert root_name() not in targets

    def test_greedy_rejects_zero_budget(self, scenario):
        with pytest.raises(ValueError):
            greedy_targets(scenario.trace("TRC1"), scenario, 0, 0.0, 1.0)

    def test_random_targets_deterministic(self, scenario):
        assert random_targets(scenario, 5, seed=1) == random_targets(
            scenario, 5, seed=1
        )
        assert random_targets(scenario, 5, seed=1) != random_targets(
            scenario, 5, seed=2
        )


class TestExperiment:
    def test_greedy_beats_random(self, scenario):
        result = _max_damage_experiment(scenario, budget=4)
        greedy = result.rate_of("greedy (oracle)", "vanilla")
        random_rate = result.rate_of("random", "vanilla")
        assert greedy >= random_rate

    def test_combination_blunts_every_strategy(self, scenario):
        result = _max_damage_experiment(scenario, budget=4)
        for strategy in ("greedy (oracle)", "root+TLDs", "random"):
            assert result.rate_of(strategy, "combination") <= \
                result.rate_of(strategy, "vanilla") + 1e-9

    def test_render(self, scenario):
        result = _max_damage_experiment(scenario, budget=3)
        text = result.render()
        assert "budget = 3" in text
        assert "greedy (oracle)" in text

    def test_unknown_row_raises(self, scenario):
        result = _max_damage_experiment(scenario, budget=3)
        with pytest.raises(KeyError):
            result.rate_of("nonexistent", "vanilla")
