"""Tests for the ablation / extension experiments."""

import pytest

from repro.experiments.ablations import (
    capacity_ablation,
    holddown_ablation,
    mechanism_ablation,
    other_attack_classes,
    scale_sensitivity,
    stale_comparison,
)
from repro.experiments.scenarios import Scale, make_scenario


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestMechanismAblation:
    def test_rows_and_ordering(self, scenario):
        result = mechanism_ablation(scenario)
        labels = [row[0] for row in result.rows]
        assert labels[0] == "vanilla"
        assert "combination" in labels
        # Stacked mechanisms never do worse than vanilla.
        vanilla = result.sr_rate("vanilla")
        assert result.sr_rate("refresh only") <= vanilla
        assert result.sr_rate("refresh + renew") <= vanilla
        assert result.sr_rate("combination") <= vanilla

    def test_render(self, scenario):
        assert "Ablation" in mechanism_ablation(scenario).render()

    def test_unknown_label_raises(self, scenario):
        with pytest.raises(KeyError):
            mechanism_ablation(scenario).sr_rate("nope")


class TestStaleComparison:
    def test_stale_beats_vanilla(self, scenario):
        result = stale_comparison(scenario)
        assert result.sr_rate("serve-stale") <= result.sr_rate("vanilla")


class TestOtherAttackClasses:
    def test_single_zone_attacks_have_limited_blast_radius(self, scenario):
        result = other_attack_classes(scenario)
        # An attack on one SLD/provider hurts far fewer queries than the
        # root+TLD attack does (which is >30% SR failures at this scale).
        for label, sr, _, _ in result.rows:
            assert sr < 0.30, label

    def test_render(self, scenario):
        assert "attack classes" in other_attack_classes(scenario).render()


class TestHolddownAblation:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return holddown_ablation(scenario)

    def test_holddown_does_not_change_sr_outcome(self, result):
        assert result.sr_rate("vanilla + holddown 10m") == pytest.approx(
            result.sr_rate("vanilla"), abs=0.05
        )

    def test_holddown_reduces_message_volume(self, result):
        rows = {label: messages for label, _, _, messages in result.rows}
        assert rows["vanilla + holddown 10m"] < rows["vanilla"]

    def test_fast_select_preserves_availability(self, result):
        assert result.sr_rate("refresh + fast-select") == pytest.approx(
            result.sr_rate("refresh + holddown 10m"), abs=0.10
        )


class TestCapacityAblation:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return capacity_ablation(scenario)

    def test_generous_capacity_matches_unbounded(self, result):
        assert result.sr_rate("combination / 4x zones") == pytest.approx(
            result.sr_rate("combination / unbounded"), abs=0.02
        )

    def test_starved_cache_degrades(self, result):
        assert result.sr_rate("combination / 0.25x zones") > \
            result.sr_rate("combination / 4x zones")

    def test_render(self, result):
        assert "cache capacity" in result.render()


class TestScaleSensitivity:
    def test_runs_at_tiny_only(self):
        # Single-scale invocation keeps this a unit test; the cross-scale
        # claim is exercised by the dedicated bench.
        result = scale_sensitivity(scales=(Scale.TINY,))
        assert len(result.rows) == 3
        assert {row[1] for row in result.rows} == {
            "vanilla", "refresh", "combination"
        }
        assert "Scale sensitivity" in result.render()
