"""Tests for the parallel batch replay runner.

The load-bearing guarantee is determinism: a sweep fanned over worker
processes must produce *bitwise-identical* numbers to the serial loop,
because a replay's outcome depends only on its spec.  The rest covers
the failure surface (crashed workers, hung replays, bad $REPRO_WORKERS)
and the picklability contract the pool relies on.
"""

import os
import pickle
import time

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments import parallel
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.parallel import (
    FleetSpec,
    ReplayExecutionError,
    ReplaySpec,
    ReplaySummary,
    WORKERS_ENV_VAR,
    default_worker_count,
    run_replays,
    summarize_replay,
)
from repro.experiments.scenarios import Scale, make_scenario


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


def _sweep_specs(scenario) -> list[ReplaySpec]:
    """A small heterogeneous sweep: two schemes, two traces, one attack."""
    attack = AttackSpec(start=scenario.attack_start, duration=6 * 3600.0)
    return [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack)
        for config in (ResilienceConfig.vanilla(), ResilienceConfig.refresh())
        for trace_name in ("TRC1", "TRC2")
    ]


class TestSpecs:
    def test_for_scenario_carries_the_memo_key(self, scenario):
        spec = _sweep_specs(scenario)[0]
        assert spec.scale is scenario.scale
        assert spec.scenario_seed == scenario.seed

    def test_specs_and_summaries_are_picklable(self, scenario):
        spec = _sweep_specs(scenario)[0]
        restored = pickle.loads(pickle.dumps(spec))
        assert restored == spec
        # The config's renewal-policy factory must survive the trip too.
        renewing = ResilienceConfig.refresh_renew("a-lfu", 5)
        revived = pickle.loads(pickle.dumps(renewing))
        assert revived.renewal_policy() is not None

        summary = run_replays([spec], workers=1)[0]
        assert pickle.loads(pickle.dumps(summary)) == summary

    def test_describe_names_the_work(self, scenario):
        spec = _sweep_specs(scenario)[0]
        assert "TRC1" in spec.describe()
        fleet = FleetSpec.for_scenario(
            scenario, ("TRC1", "TRC2"), ResilienceConfig.vanilla()
        )
        assert "fleet" in fleet.describe()


class TestSerialPath:
    def test_matches_direct_run_replay(self, scenario):
        spec = _sweep_specs(scenario)[0]
        direct = run_replay(
            scenario.built,
            scenario.trace(spec.trace_name),
            spec.config,
            attack=spec.attack,
            seed=spec.seed,
        )
        summary = run_replays([spec], workers=1)[0]
        assert summary == summarize_replay(direct)
        assert summary.sr_attack_failure_rate == pytest.approx(
            direct.sr_attack_failure_rate
        )

    def test_results_in_spec_order(self, scenario):
        specs = _sweep_specs(scenario)
        summaries = run_replays(specs, workers=1)
        assert [s.trace_name for s in summaries] == [
            spec.trace_name for spec in specs
        ]
        assert [s.label for s in summaries] == [
            spec.config.label for spec in specs
        ]

    def test_rejects_nonpositive_workers(self, scenario):
        with pytest.raises(ValueError):
            run_replays(_sweep_specs(scenario), workers=0)


class TestDeterminism:
    def test_parallel_is_bitwise_identical_to_serial(self, scenario):
        """The golden guarantee: worker fan-out changes nothing."""
        specs = _sweep_specs(scenario)
        serial = run_replays(specs, workers=1)
        fanned = run_replays(specs, workers=2)
        assert fanned == serial  # full dataclass equality, every counter

    def test_swr_and_decoupled_identical_at_any_worker_count(
        self, scenario, tmp_path
    ):
        # Renewal 2.0 (DESIGN.md §17): the background-refetch scheduling
        # and the invalidation channel must not leak worker-count
        # nondeterminism — summaries equal AND event logs byte-identical.
        import filecmp

        from repro.obs.spec import ObservationSpec

        attack = AttackSpec(start=scenario.attack_start, duration=6 * 3600.0)

        def specs(tag):
            return [
                ReplaySpec.for_scenario(
                    scenario, "TRC1", config, attack=attack,
                    observe=ObservationSpec(
                        events_path=str(tmp_path / f"{config.label}-{tag}.jsonl")
                    ),
                )
                for config in (ResilienceConfig.swr(),
                               ResilienceConfig.decoupled(7.0))
            ]

        serial = run_replays(specs("serial"), workers=1)
        fanned = run_replays(specs("fanned"), workers=4)
        assert fanned == serial
        assert serial[0].swr_refreshes > 0
        assert serial[0].sr_stale_hits > 0
        for label in ("swr3600s", "decoupled7d"):
            assert filecmp.cmp(tmp_path / f"{label}-serial.jsonl",
                               tmp_path / f"{label}-fanned.jsonl",
                               shallow=False), label

    def test_parallel_fleet_matches_serial(self, scenario):
        spec = FleetSpec.for_scenario(
            scenario, ("TRC1", "TRC2"), ResilienceConfig.vanilla(),
            attack=AttackSpec(start=scenario.attack_start,
                              duration=6 * 3600.0),
        )
        # Duplicate the spec so the parallel path actually engages.
        serial = run_replays([spec, spec], workers=1)
        fanned = run_replays([spec, spec], workers=2)
        assert [s.aggregate_sr_failure_rate() for s in fanned] == [
            s.aggregate_sr_failure_rate() for s in serial
        ]
        assert fanned == serial


def _crash_worker(spec):
    os._exit(13)  # simulate an OOM-kill; never raises, just dies


def _hang_worker(spec):
    time.sleep(60.0)


class TestFailureSurface:
    @pytest.fixture(autouse=True)
    def _fresh_pool(self, monkeypatch):
        """Fork a fresh pool so the monkeypatched module reaches workers.

        A reused warm pool predates the patch (fork copies memory at
        pool-creation time), so these tests must opt out of reuse.
        """
        monkeypatch.setenv(parallel.POOL_REUSE_ENV_VAR, "0")
        parallel.shutdown_shared_pool()

    def test_dead_worker_reported_clearly(self, scenario, monkeypatch):
        monkeypatch.setattr(parallel, "_execute_spec", _crash_worker)
        with pytest.raises(ReplayExecutionError, match="worker process died"):
            run_replays(_sweep_specs(scenario)[:2], workers=2)

    def test_timeout_reported_with_the_spec(self, scenario, monkeypatch):
        monkeypatch.setattr(parallel, "_execute_spec", _hang_worker)
        # Genuine wall-clock measurement: the assertion is about real
        # elapsed time (hung workers must die), not simulated time.
        started = time.monotonic()  # repro: ignore[REP001]
        with pytest.raises(ReplayExecutionError, match="timeout"):
            run_replays(_sweep_specs(scenario)[:2], workers=2, timeout=1.0)
        # The hung workers were killed, not waited out.
        assert time.monotonic() - started < 30.0  # repro: ignore[REP001]


class TestPoolReuse:
    @pytest.fixture(autouse=True)
    def _clean_slate(self, monkeypatch):
        monkeypatch.delenv(parallel.POOL_REUSE_ENV_VAR, raising=False)
        parallel.shutdown_shared_pool()
        yield
        parallel.shutdown_shared_pool()

    def test_pool_survives_across_calls(self, scenario):
        specs = _sweep_specs(scenario)
        run_replays(specs, workers=2)
        first = parallel._shared_pool
        assert first is not None
        run_replays(specs, workers=2)
        assert parallel._shared_pool is first

    def test_worker_count_change_replaces_pool(self, scenario):
        specs = _sweep_specs(scenario)
        run_replays(specs, workers=2)
        first = parallel._shared_pool
        run_replays(specs, workers=3)
        assert parallel._shared_pool is not first

    def test_escape_hatch_disables_reuse(self, scenario, monkeypatch):
        monkeypatch.setenv(parallel.POOL_REUSE_ENV_VAR, "0")
        assert not parallel.pool_reuse_enabled()
        run_replays(_sweep_specs(scenario), workers=2)
        assert parallel._shared_pool is None

    def test_reused_pool_results_stay_identical(self, scenario):
        specs = _sweep_specs(scenario)
        serial = run_replays(specs, workers=1)
        warm_once = run_replays(specs, workers=2)
        warm_twice = run_replays(specs, workers=2)  # reused pool
        assert warm_once == serial
        assert warm_twice == serial

    def test_shutdown_is_idempotent(self):
        parallel.shutdown_shared_pool()
        parallel.shutdown_shared_pool()


class TestUsableCpuCount:
    def test_positive_and_bounded_by_machine(self):
        usable = parallel.usable_cpu_count()
        assert usable >= 1
        cpus = os.cpu_count()
        if cpus is not None:
            assert usable <= cpus


class TestWorkersEnvVar:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert default_worker_count() == 1

    def test_reads_positive_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert default_worker_count() == 4

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="many"):
            default_worker_count()

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_worker_count()
