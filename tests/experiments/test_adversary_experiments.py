"""The amplification and poisoning experiments end to end (tiny axes)."""

import argparse

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.amplification import (
    AmplificationSpec,
    run as run_amplification,
)
from repro.experiments.poisoning import (
    PoisoningSpec,
    _percentile,
    run as run_poisoning,
)
from repro.experiments.registry import add_spec_arguments, spec_from_args
from repro.experiments.scenarios import Scale


class TestAmplification:
    @pytest.fixture(scope="class")
    def result(self):
        return run_amplification(AmplificationSpec(
            scale=Scale.TINY,
            attack_hours=0.25,
            queries_per_minute=12.0,
            delegations=4,
            fan_outs=(2, 6),
            fetch_budgets=(0, 2),
        ))

    def test_grid_shape(self, result):
        assert result.fan_outs == (2, 6)
        assert result.budgets == (0, 2)
        assert len(result.cells) == 4

    def test_undefended_amplification_scales_with_fan_out(self, result):
        narrow = result.cell(budget=0, fan_out=2)
        wide = result.cell(budget=0, fan_out=6)
        assert 1.0 < narrow.amplification < wide.amplification
        assert narrow.budget_exhaustions == 0

    def test_budget_clamps_with_bounded_collateral(self, result):
        open_cell = result.cell(budget=0, fan_out=6)
        capped = result.cell(budget=2, fan_out=6)
        assert capped.amplification < open_cell.amplification
        assert capped.budget_exhaustions > 0
        # The clamp must not torch legitimate traffic: collateral SR
        # failure stays within a point of the undefended run.
        assert abs(capped.sr_rate - open_cell.sr_rate) < 0.01

    def test_render_is_a_grid(self, result):
        table = result.render()
        assert "fan=2" in table and "fan=6" in table
        assert "off" in table and "b=2" in table
        assert "NXNS amplification" in table

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_amplification(AmplificationSpec(fan_outs=()))
        with pytest.raises(ValueError):
            run_amplification(AmplificationSpec(fetch_budgets=()))
        with pytest.raises(ValueError):
            run_amplification(AmplificationSpec(fan_outs=(0,)))

    def test_cli_round_trip(self):
        parser = argparse.ArgumentParser()
        definition = EXPERIMENTS["amplification"]
        add_spec_arguments(parser, definition.spec_type)
        args = parser.parse_args(
            ["--scale", "tiny", "--fan-outs", "2,6", "--fetch-budgets",
             "0,4", "--attack-hours", "1.5"]
        )
        spec = spec_from_args(definition.spec_type, args)
        assert spec == AmplificationSpec(
            scale=Scale.TINY, fan_outs=(2, 6), fetch_budgets=(0, 4),
            attack_hours=1.5,
        )


class TestPoisoning:
    @pytest.fixture(scope="class")
    def result(self):
        return run_poisoning(PoisoningSpec(
            scale=Scale.TINY,
            schemes="vanilla",
            rates=(0.2,),
            entropy_bits=4,
        ))

    def test_rows_pair_each_scheme_with_a_guard(self, result):
        assert result.schemes == ("vanilla", "vanilla+guard")
        assert len(result.cells) == 2

    def test_guard_cuts_stuck_forgeries(self, result):
        base = result.cell("vanilla", 0.2)
        guarded = result.cell("vanilla+guard", 0.2)
        assert base.stored > 0
        assert guarded.stored < base.stored
        assert base.stored >= base.cured
        assert all(dwell >= 0.0 for dwell in base.dwells)

    def test_dwell_percentiles_are_ordered(self, result):
        base = result.cell("vanilla", 0.2)
        assert base.dwell_p50 <= base.dwell_p90

    def test_render_reports_dwells(self, result):
        table = result.render()
        assert "rate=0.2" in table
        assert "stuck" in table
        assert "vanilla+guard" in table

    def test_bad_axes_rejected(self):
        with pytest.raises(ValueError):
            run_poisoning(PoisoningSpec(schemes="  "))
        with pytest.raises(ValueError):
            run_poisoning(PoisoningSpec(rates=()))
        with pytest.raises(ValueError):
            run_poisoning(PoisoningSpec(rates=(1.5,)))
        with pytest.raises(ValueError):
            run_poisoning(PoisoningSpec(entropy_bits=-1))

    def test_percentile_is_nearest_rank(self):
        assert _percentile((), 0.5) == 0.0
        assert _percentile((3.0, 1.0, 2.0), 0.5) == 2.0
        assert _percentile((3.0, 1.0, 2.0), 0.9) == 3.0

    def test_cli_round_trip(self):
        parser = argparse.ArgumentParser()
        definition = EXPERIMENTS["poisoning"]
        add_spec_arguments(parser, definition.spec_type)
        args = parser.parse_args(
            ["--schemes", "vanilla", "--rates", "0.1,0.3",
             "--entropy-bits", "8"]
        )
        spec = spec_from_args(definition.spec_type, args)
        assert spec == PoisoningSpec(
            schemes="vanilla", rates=(0.1, 0.3), entropy_bits=8,
        )
