"""Tests for the churn and response-time experiments."""

import pytest

from repro.experiments import churn, latency
from repro.experiments.churn import ChurnSpec
from repro.experiments.latency import LatencySpec
from repro.experiments.scenarios import Scale, make_scenario
from repro.hierarchy.builder import HierarchyConfig
from repro.workload.generator import WorkloadConfig


@pytest.fixture(scope="module")
def churn_result():
    return churn.run(ChurnSpec(
        hierarchy=HierarchyConfig(num_tlds=6, num_slds=80, num_providers=2),
        workload=WorkloadConfig(duration_days=7.0, queries_per_day=1_500,
                                num_clients=40),
        churn_fraction=0.3,
    ))


class TestChurnExperiment:
    def test_availability_unharmed_by_churn(self, churn_result):
        # Paper §4: the long-TTL downside is latency, not correctness —
        # the parent fallback resets obsolete IRRs.
        for row in churn_result.rows:
            assert row.sr_failure_rate < 0.005, row.label

    def test_longer_ttls_touch_more_obsolete_servers(self, churn_result):
        vanilla = churn_result.row("vanilla").stale_touches
        seven = churn_result.row("refresh+ttl7d").stale_touches
        assert seven >= vanilla

    def test_decoupled_beats_long_ttl_on_staleness(self, churn_result):
        # Same long TTLs, but the invalidation channel evicts obsolete
        # IRRs the instant a zone migrates: fewer obsolete-server
        # touches at no availability cost (DESIGN.md §17).
        long_ttl = churn_result.row("refresh+ttl7d")
        decoupled = churn_result.row("decoupled7d")
        assert decoupled.stale_touches < long_ttl.stale_touches
        assert decoupled.sr_failure_rate <= long_ttl.sr_failure_rate

    def test_decoupled_invalidations_recorded(self, churn_result):
        assert churn_result.row("decoupled7d").invalidations > 0
        # Without the update channel the listener is a no-op.
        assert churn_result.row("refresh+ttl7d").invalidations == 0

    def test_upstream_queries_accounted_for_every_row(self, churn_result):
        for row in churn_result.rows:
            assert row.upstream_queries > 0, row.label

    def test_swr_row_present_with_bounded_staleness(self, churn_result):
        row = churn_result.row("swr3600s")
        assert 0.0 <= row.stale_answer_rate <= 1.0

    def test_render(self, churn_result):
        text = churn_result.render()
        assert "IRR churn" in text and "vanilla" in text
        assert "Stale answers" in text and "Upstream queries" in text

    def test_unknown_row(self, churn_result):
        with pytest.raises(KeyError):
            churn_result.row("nope")


class TestLatencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return latency.run(LatencySpec(scale=Scale.TINY))

    def test_long_ttl_lowers_latency(self, result):
        # Fewer tree walks => lower mean wait (paper §4).
        assert result.row("refresh+ttl7d").mean_latency <= \
            result.row("vanilla").mean_latency

    def test_refresh_reduces_queries_per_lookup(self, result):
        assert result.row("refresh").cs_queries_per_lookup <= \
            result.row("vanilla").cs_queries_per_lookup

    def test_hit_rates_sane(self, result):
        for row in result.rows:
            assert 0.0 <= row.cache_hit_rate <= 1.0
            assert row.cs_queries_per_lookup >= 0.0

    def test_render(self, result):
        assert "Response time" in result.render()
