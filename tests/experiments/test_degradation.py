"""The degradation experiment, and fault-layer end-to-end guarantees.

Two properties ride on the fault tentpole: replays with faults enabled
stay byte-identical across seeds and worker counts (the hash-keyed
draws), and a replay with faults *disabled* — no spec, or an inert one —
is bit-for-bit the simulation that existed before the layer was added.
"""

import pytest

from repro.core.config import ResilienceConfig, RetryPolicy
from repro.experiments import EXPERIMENTS
from repro.experiments.degradation import (
    DegradationSpec,
    run as run_degradation,
)
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.scenarios import Scale, make_scenario
from repro.obs import ObservationSpec
from repro.simulation.faults import FaultSpec

HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestDegradationExperiment:
    def test_registered(self):
        assert EXPERIMENTS["degradation"].spec_type is DegradationSpec

    def test_sweep_shape_and_knee(self, scenario):
        spec = DegradationSpec(
            scale=Scale.TINY,
            intensities=(0.0, 1.0),
            retry_tries=(0, 2),
            knee_threshold=0.02,
        )
        result = run_degradation(spec)
        assert result.policies == ("refresh+noretry", "refresh+retry2")
        assert len(result.cells) == 4
        for policy in result.policies:
            # No attack traffic is dropped at intensity 0.
            assert result.cell(policy, 0.0).sr_rate == 0.0
            # The blackout column reproduces the paper's regime, so the
            # knee exists and sits at the blackout end of this sweep.
            assert result.cell(policy, 1.0).sr_rate > 0.02
            assert result.knee(policy) == 1.0
        rendered = result.render()
        assert "i=1" in rendered and "knee" in rendered

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_degradation(DegradationSpec(intensities=()))
        with pytest.raises(ValueError):
            run_degradation(DegradationSpec(retry_tries=()))
        with pytest.raises(ValueError):
            run_degradation(DegradationSpec(intensities=(0.5, 1.5)))


class TestFaultsDisabledIdentity:
    def test_inert_spec_matches_no_spec(self, scenario):
        attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
        plain = run_replay(scenario.built, scenario.trace("TRC1"),
                           ResilienceConfig.refresh(), attack=attack)
        inert = run_replay(scenario.built, scenario.trace("TRC1"),
                           ResilienceConfig.refresh(), attack=attack,
                           faults=FaultSpec())
        assert inert.metrics == plain.metrics
        assert inert.window == plain.window
        assert inert.to_summary() == plain.to_summary()

    def test_full_intensity_attack_matches_pre_fault_blackout(self, scenario):
        # intensity=1.0 is the default: the injector-free fast path.
        explicit = AttackSpec(start=scenario.attack_start, duration=6 * HOUR,
                              intensity=1.0)
        assert not explicit.partial
        baseline = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
        a = run_replay(scenario.built, scenario.trace("TRC1"),
                       ResilienceConfig.combination(), attack=baseline)
        b = run_replay(scenario.built, scenario.trace("TRC1"),
                       ResilienceConfig.combination(), attack=explicit)
        assert a.to_summary() == b.to_summary()

    def test_partial_attack_hurts_less_than_blackout(self, scenario):
        def rate(intensity):
            result = run_replay(
                scenario.built, scenario.trace("TRC1"),
                ResilienceConfig.vanilla(),
                attack=AttackSpec(start=scenario.attack_start,
                                  duration=6 * HOUR, intensity=intensity),
            )
            return result.sr_attack_failure_rate

        blackout = rate(1.0)
        partial = rate(0.5)
        assert blackout > 0.0
        assert partial < blackout


class TestFaultsEnabledDeterminism:
    def spec_for(self, scenario, tmp_path, tag, trace_name):
        return ReplaySpec.for_scenario(
            scenario, trace_name,
            ResilienceConfig.refresh().with_retries(RetryPolicy(max_tries=2)),
            attack=AttackSpec(start=scenario.attack_start, duration=6 * HOUR,
                              intensity=0.5),
            faults=FaultSpec(background_loss=0.05, jitter=0.1),
            observe=ObservationSpec(
                events_path=str(tmp_path / f"{tag}-{trace_name}.jsonl")
            ),
        )

    def test_event_logs_identical_at_any_worker_count(self, scenario, tmp_path):
        traces = ("TRC1", "TRC2")
        serial = run_replays(
            [self.spec_for(scenario, tmp_path, "serial", t) for t in traces],
            workers=1,
        )
        fanned = run_replays(
            [self.spec_for(scenario, tmp_path, "fanned", t) for t in traces],
            workers=2,
        )
        assert fanned == serial
        for trace_name in traces:
            serial_log = (tmp_path / f"serial-{trace_name}.jsonl").read_bytes()
            fanned_log = (tmp_path / f"fanned-{trace_name}.jsonl").read_bytes()
            assert serial_log == fanned_log
            assert b"fault.drop" in serial_log

    def test_different_seed_changes_fault_draws(self, scenario):
        def summary(seed):
            return run_replay(
                scenario.built, scenario.trace("TRC1"),
                ResilienceConfig.refresh(),
                attack=AttackSpec(start=scenario.attack_start,
                                  duration=6 * HOUR, intensity=0.5),
                faults=FaultSpec(background_loss=0.1),
                seed=seed,
            ).to_summary()

        assert summary(0) == summary(0)
        assert summary(0) != summary(1)
