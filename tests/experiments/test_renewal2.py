"""The Renewal 2.0 comparison experiment (`repro renewal2`)."""

import pytest

from repro.experiments.attack_grid import (
    Renewal2Result,
    Renewal2Row,
    Renewal2Spec,
    run_renewal2,
)
from repro.experiments.scenarios import Scale


@pytest.fixture(scope="module")
def result():
    return run_renewal2(Renewal2Spec(scale=Scale.TINY, trace_limit=1))


class TestRenewal2Experiment:
    def test_all_requested_schemes_have_rows(self, result):
        labels = [row.label for row in result.rows]
        assert labels == ["refresh+a-lru3", "refresh+a-lfu3",
                          "swr3600s", "decoupled7d"]

    def test_upstream_budget_accounted_for_every_scheme(self, result):
        # The whole point of the table: every scheme's refreshes are
        # renewal-tagged, so upstream_queries is comparable across rows.
        for row in result.rows:
            assert row.upstream_queries > 0, row.label
            assert row.upstream_per_stub > 0.0, row.label

    def test_decoupled_survives_on_smallest_budget(self, result):
        decoupled = result.row("decoupled7d")
        assert decoupled.sr_attack_failure_rate == 0.0
        assert decoupled.upstream_queries == min(
            row.upstream_queries for row in result.rows
        )

    def test_only_swr_serves_stale(self, result):
        assert result.row("swr3600s").stale_answer_rate > 0.0
        for label in ("refresh+a-lru3", "refresh+a-lfu3", "decoupled7d"):
            assert result.row(label).stale_answer_rate == 0.0

    def test_render_and_row_lookup(self, result):
        text = result.render()
        assert "equal upstream query budget" in text
        assert "swr3600s" in text and "decoupled7d" in text
        with pytest.raises(KeyError):
            result.row("nope")


class TestRenewal2Shapes:
    def test_result_renders_from_hand_built_rows(self):
        row = Renewal2Row(
            label="x", sr_attack_failure_rate=0.5,
            cs_attack_failure_rate=0.25, stale_answer_rate=0.1,
            upstream_queries=100, upstream_per_stub=1.5,
        )
        result = Renewal2Result(attack_hours=6.0, rows=(row,))
        assert "50.00 %" in result.render()
        assert result.row("x") is row
