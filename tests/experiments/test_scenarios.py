"""Tests for scale presets and scenario construction."""

import pytest

from repro.experiments.scenarios import (
    SCALE_ENV_VAR,
    Scale,
    Scenario,
    make_scenario,
)


class TestScale:
    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert Scale.from_env() is Scale.SMALL
        assert Scale.from_env(default=Scale.TINY) is Scale.TINY

    def test_from_env_reads_variable(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "tiny")
        assert Scale.from_env() is Scale.TINY
        monkeypatch.setenv(SCALE_ENV_VAR, "MEDIUM")
        assert Scale.from_env() is Scale.MEDIUM

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "galactic")
        with pytest.raises(ValueError, match="galactic"):
            Scale.from_env()

    def test_from_env_error_lists_valid_scales(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "galactic")
        with pytest.raises(ValueError) as excinfo:
            Scale.from_env()
        message = str(excinfo.value)
        assert SCALE_ENV_VAR in message
        for scale in Scale:
            assert scale.value in message

    def test_from_env_ignores_explicit_default_when_set(self, monkeypatch):
        # An invalid value must error even when a default is supplied:
        # silently falling back would mask a typo'd REPRO_SCALE.
        monkeypatch.setenv(SCALE_ENV_VAR, "galactic")
        with pytest.raises(ValueError):
            Scale.from_env(default=Scale.TINY)


class TestScenario:
    def test_memoised_per_scale_and_seed(self):
        assert make_scenario(Scale.TINY) is make_scenario(Scale.TINY)
        assert make_scenario(Scale.TINY, seed=9) is not make_scenario(Scale.TINY)

    def test_traces_cached(self):
        scenario = make_scenario(Scale.TINY)
        assert scenario.trace("TRC1") is scenario.trace("TRC1")

    def test_week_and_month_traces_differ_in_duration(self):
        scenario = make_scenario(Scale.TINY)
        week = scenario.trace("TRC1")
        month = scenario.trace("TRC6")
        assert week.duration == pytest.approx(7 * 86400.0)
        assert month.duration == pytest.approx(31 * 86400.0)

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            make_scenario(Scale.TINY).trace("TRC9")

    def test_week_traces_limit(self):
        scenario = make_scenario(Scale.TINY)
        assert len(scenario.week_traces(2)) == 2
        assert [t.name for t in scenario.week_traces(2)] == ["TRC1", "TRC2"]

    def test_traces_are_decorrelated(self):
        scenario = make_scenario(Scale.TINY)
        one, two = scenario.week_traces(2)
        heads = lambda trace: [q.qname for q in trace.queries[:30]]
        assert heads(one) != heads(two)

    def test_attack_start_is_day_seven(self):
        assert make_scenario(Scale.TINY).attack_start == 6 * 86400.0

    def test_scales_order_by_size(self):
        tiny = make_scenario(Scale.TINY)
        small = make_scenario(Scale.SMALL)
        assert small.built.tree.zone_count() > tiny.built.tree.zone_count()
        assert len(small.trace("TRC1")) > len(tiny.trace("TRC1"))
