"""Tests for the replay harness."""

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, make_scenario

DAY = 86400.0
HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestAttackSpec:
    def test_defaults_match_paper(self):
        spec = AttackSpec()
        assert spec.start == 6 * DAY
        assert spec.duration == 6 * HOUR
        assert spec.end == 6 * DAY + 6 * HOUR

    def test_default_targets_root_and_tlds(self, scenario):
        schedule = AttackSpec().build_schedule(scenario.built)
        window = schedule.windows()[0]
        assert len(window.target_zones) == 1 + len(scenario.built.tree.tld_names())

    def test_explicit_targets(self, scenario):
        target = scenario.built.provider_zones[0]
        schedule = AttackSpec(targets=(target,)).build_schedule(scenario.built)
        assert schedule.windows()[0].target_zones == frozenset([target])


class TestRunReplay:
    def test_basic_replay_counts_all_queries(self, scenario):
        trace = scenario.trace("TRC1")
        result = run_replay(scenario.built, trace, ResilienceConfig.vanilla())
        assert result.metrics.sr_queries == len(trace)
        assert result.metrics.cs_demand_queries > 0
        assert result.window is None
        assert result.sr_attack_failure_rate == 0.0

    def test_attack_window_populated(self, scenario):
        result = run_replay(
            scenario.built, scenario.trace("TRC1"),
            ResilienceConfig.vanilla(), attack=AttackSpec(),
        )
        assert result.window is not None
        assert result.window.sr_queries > 0
        assert 0.0 < result.sr_attack_failure_rate <= 1.0

    def test_no_failures_without_attack(self, scenario):
        result = run_replay(scenario.built, scenario.trace("TRC1"),
                            ResilienceConfig.vanilla())
        assert result.metrics.sr_failures == 0

    def test_gap_tracking_optional(self, scenario):
        without = run_replay(scenario.built, scenario.trace("TRC1"),
                             ResilienceConfig.vanilla())
        assert without.gap_tracker is None
        with_gaps = run_replay(scenario.built, scenario.trace("TRC1"),
                               ResilienceConfig.vanilla(), track_gaps=True)
        assert with_gaps.gap_tracker is not None
        assert len(with_gaps.gap_tracker) > 0

    def test_memory_sampling(self, scenario):
        result = run_replay(
            scenario.built, scenario.trace("TRC1"),
            ResilienceConfig.vanilla(), memory_sample_interval=12 * HOUR,
        )
        samples = result.metrics.memory_samples
        assert len(samples) == 14  # every 12 h from 12 h to day 7 inclusive
        assert samples[-1].records_cached > 0
        times = [s.time for s in samples]
        assert times == sorted(times)

    def test_long_ttl_restored_after_replay(self, scenario):
        tree = scenario.built.tree
        sld = next(z for z in tree.zones() if z.name.depth() == 2)
        before = sld.infrastructure_records.ns.ttl
        run_replay(scenario.built, scenario.trace("TRC1"),
                   ResilienceConfig.refresh_long_ttl(7))
        assert sld.infrastructure_records.ns.ttl == before

    def test_deterministic_given_seed(self, scenario):
        args = (scenario.built, scenario.trace("TRC2"), ResilienceConfig.refresh())
        first = run_replay(*args, attack=AttackSpec(), seed=3)
        second = run_replay(*args, attack=AttackSpec(), seed=3)
        assert first.metrics.cs_demand_queries == second.metrics.cs_demand_queries
        assert first.sr_attack_failure_rate == second.sr_attack_failure_rate

    def test_result_labels(self, scenario):
        result = run_replay(scenario.built, scenario.trace("TRC1"),
                            ResilienceConfig.refresh())
        assert result.label == "refresh"
        assert result.trace_name == "TRC1"
