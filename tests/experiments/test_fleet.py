"""Tests for the fleet replay (multiple caching servers, shared time)."""

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments.fleet import fleet_attack_comparison, run_fleet_replay
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, make_scenario


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestFleetReplay:
    def test_every_member_replayed_fully(self, scenario):
        traces = scenario.week_traces(3)
        result = run_fleet_replay(scenario.built, traces,
                                  ResilienceConfig.vanilla())
        assert len(result.members) == 3
        for trace, member in zip(traces, result.members):
            assert member.metrics.sr_queries == len(trace)

    def test_caches_are_independent(self, scenario):
        traces = scenario.week_traces(2)
        result = run_fleet_replay(scenario.built, traces,
                                  ResilienceConfig.vanilla())
        first = result.member("TRC1").server
        second = result.member("TRC2").server
        assert first is not second
        assert first.cache is not second.cache

    def test_aggregate_matches_members(self, scenario):
        traces = scenario.week_traces(2)
        result = run_fleet_replay(
            scenario.built, traces, ResilienceConfig.vanilla(),
            attack=AttackSpec(),
        )
        total_queries = sum(m.window.sr_queries for m in result.members)
        total_failures = sum(m.window.sr_failures for m in result.members)
        assert result.total_failed_lookups() == total_failures
        assert result.aggregate_sr_failure_rate() == pytest.approx(
            total_failures / total_queries
        )

    def test_fleet_member_close_to_solo_replay(self, scenario):
        # A fleet member and a solo replay of the same trace see the
        # same attack; failure rates should be in the same ballpark
        # (not identical: per-member seeds differ by design).
        trace = scenario.trace("TRC1")
        solo = run_replay(scenario.built, trace, ResilienceConfig.vanilla(),
                          attack=AttackSpec(), seed=0)
        fleet = run_fleet_replay(
            scenario.built, [trace], ResilienceConfig.vanilla(),
            attack=AttackSpec(), seed=0,
        )
        assert fleet.member("TRC1").window.sr_failure_rate == pytest.approx(
            solo.sr_attack_failure_rate, abs=0.05
        )

    def test_empty_fleet_rejected(self, scenario):
        with pytest.raises(ValueError):
            run_fleet_replay(scenario.built, [], ResilienceConfig.vanilla())

    def test_long_ttl_restored(self, scenario):
        tree = scenario.built.tree
        sld = next(z for z in tree.zones() if z.name.depth() == 2)
        before = sld.infrastructure_records.ns.ttl
        run_fleet_replay(
            scenario.built, scenario.week_traces(1),
            ResilienceConfig.refresh_long_ttl(7),
        )
        assert sld.infrastructure_records.ns.ttl == before

    def test_unknown_member(self, scenario):
        result = run_fleet_replay(scenario.built, scenario.week_traces(1),
                                  ResilienceConfig.vanilla())
        with pytest.raises(KeyError):
            result.member("TRC9")

    def test_render(self, scenario):
        result = run_fleet_replay(
            scenario.built, scenario.week_traces(2),
            ResilienceConfig.vanilla(), attack=AttackSpec(),
        )
        text = result.render()
        assert "fleet" in text and "TRC1" in text


class TestFleetComparison:
    def test_schemes_ordered(self, scenario):
        results = fleet_attack_comparison(scenario, trace_limit=2)
        vanilla = results["vanilla"].aggregate_sr_failure_rate()
        combo = results["combo+a-lfu3+ttl3d"].aggregate_sr_failure_rate()
        assert combo < vanilla
