"""The five legacy ``*_experiment`` aliases warn and still delegate.

PR 3 replaced these call surfaces with the spec/``run`` registry path;
this PR deprecates the aliases ahead of removal (see CHANGES.md).  Each
test monkeypatches the delegate so no replay actually runs — the
contract under test is *warn, then forward untouched*.
"""

from __future__ import annotations

import pytest

from repro.experiments import churn, dnssec, latency, max_damage, multiseed

_SENTINEL = object()


def _capture(calls):
    def delegate(*args, **kwargs):
        calls.append((args, kwargs))
        return _SENTINEL

    return delegate


@pytest.mark.parametrize(
    ("module", "alias", "delegate"),
    [
        (multiseed, "multiseed_experiment", "_multiseed_experiment"),
        (latency, "latency_experiment", "_latency_experiment"),
        (max_damage, "max_damage_experiment", "_max_damage_experiment"),
        (churn, "churn_experiment", "run"),
        (dnssec, "dnssec_experiment", "run"),
    ],
)
def test_alias_warns_and_delegates(monkeypatch, module, alias, delegate):
    calls: list = []
    monkeypatch.setattr(module, delegate, _capture(calls))
    with pytest.warns(DeprecationWarning, match=alias):
        result = getattr(module, alias)()
    assert result is _SENTINEL
    assert len(calls) == 1


def test_kwargs_forwarded_to_impl(monkeypatch):
    calls: list = []
    monkeypatch.setattr(multiseed, "_multiseed_experiment", _capture(calls))
    with pytest.warns(DeprecationWarning):
        multiseed.multiseed_experiment("scenario", seeds=(1, 2))
    assert calls == [(("scenario",), {"seeds": (1, 2)})]


def test_shim_builds_equivalent_spec(monkeypatch):
    specs: list = []
    monkeypatch.setattr(churn, "run", lambda spec: specs.append(spec))
    with pytest.warns(DeprecationWarning):
        churn.churn_experiment(churn_fraction=0.5, seed=11)
    assert specs == [churn.ChurnSpec(seed=11, churn_fraction=0.5)]
