"""Tests for the DNSSEC extension experiment."""

import pytest

from repro.experiments.dnssec import DnssecSpec, run
from repro.hierarchy.builder import HierarchyConfig
from repro.workload.generator import WorkloadConfig


@pytest.fixture(scope="module")
def result():
    return run(DnssecSpec(
        hierarchy=HierarchyConfig(num_tlds=6, num_slds=80, num_providers=2,
                                  dnssec_fraction=1.0),
        workload=WorkloadConfig(duration_days=7.0, queries_per_day=1_500,
                                num_clients=40),
    ))


class TestDnssecExperiment:
    def test_validation_amplifies_attack_on_vanilla(self, result):
        plain = result.row("vanilla").sr_failure_rate
        validating = result.row("vanilla+dnssec").sr_failure_rate
        assert validating > plain
        assert result.row("vanilla+dnssec").validation_failures > 0

    def test_combination_neutralises_amplification(self, result):
        combo = result.row("combo+a-lfu3+ttl3d+dnssec").sr_failure_rate
        vanilla_validating = result.row("vanilla+dnssec").sr_failure_rate
        assert combo < vanilla_validating / 5

    def test_render(self, result):
        text = result.render()
        assert "DNSSEC" in text and "vanilla+dnssec" in text

    def test_rejects_unsigned_hierarchy(self):
        with pytest.raises(ValueError):
            run(DnssecSpec(
                hierarchy=HierarchyConfig(num_tlds=4, num_slds=10,
                                          num_providers=1,
                                          dnssec_fraction=0.0)
            ))

    def test_unknown_row(self, result):
        with pytest.raises(KeyError):
            result.row("nope")
