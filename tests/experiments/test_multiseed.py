"""Tests for multi-seed replication, traffic bytes and failure blame."""

import pytest

from repro.core.config import ResilienceConfig
from repro.dns.name import root_name
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.multiseed import (
    SeedStatistics,
    _multiseed_experiment,
)
from repro.experiments.scenarios import Scale, make_scenario


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestSeedStatistics:
    def test_mean_and_std(self):
        stats = SeedStatistics.from_samples([0.1, 0.2, 0.3])
        assert stats.mean == pytest.approx(0.2)
        assert stats.std == pytest.approx(0.1)

    def test_single_sample(self):
        stats = SeedStatistics.from_samples([0.5])
        assert stats.mean == 0.5
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeedStatistics.from_samples([])

    def test_str_is_percent(self):
        assert "±" in str(SeedStatistics.from_samples([0.1, 0.2]))


class TestMultiSeed:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return _multiseed_experiment(
            scenario,
            schemes=(ResilienceConfig.vanilla(), ResilienceConfig.combination()),
            seeds=(0, 1, 2),
        )

    def test_scheme_ordering_holds_in_means(self, result):
        assert result.row("combo+a-lfu3+ttl3d").sr.mean < \
            result.row("vanilla").sr.mean

    def test_spread_is_bounded(self, result):
        # Seeds only change server-rotation/jitter choices, so the seed
        # spread should stay within a few percentage points.
        for row in result.rows:
            assert row.sr.std < 0.08, row.scheme

    def test_render(self, result):
        assert "Multi-seed" in result.render()

    def test_requires_seeds(self, scenario):
        with pytest.raises(ValueError):
            _multiseed_experiment(scenario, seeds=())


class TestTrafficBytes:
    def test_bytes_counted_per_replay(self, scenario):
        result = run_replay(scenario.built, scenario.trace("TRC1"),
                            ResilienceConfig.vanilla())
        metrics = result.metrics
        assert metrics.bytes_out > 0
        assert metrics.bytes_in > metrics.bytes_out  # answers are bigger
        assert metrics.total_bytes == metrics.bytes_out + metrics.bytes_in

    def test_byte_overhead_tracks_message_overhead_sign(self, scenario):
        trace = scenario.trace("TRC1")
        baseline = run_replay(scenario.built, trace, ResilienceConfig.vanilla())
        long_ttl = run_replay(scenario.built, trace,
                              ResilienceConfig.refresh_long_ttl(7))
        assert long_ttl.metrics.byte_overhead_vs(baseline.metrics) < 0.0

    def test_empty_baseline_reads_as_zero_overhead(self):
        from repro.simulation.metrics import ReplayMetrics
        assert ReplayMetrics().byte_overhead_vs(ReplayMetrics()) == 0.0


class TestFailureBlame:
    def test_attack_blames_root_and_tlds(self, scenario):
        result = run_replay(
            scenario.built, scenario.trace("TRC1"),
            ResilienceConfig.vanilla(), attack=AttackSpec(),
        )
        blamed = dict(result.server.top_blamed_zones(50))
        assert blamed, "no blame recorded despite attack failures"
        tlds = set(scenario.built.tree.tld_names())
        blamed_infra = sum(
            count for zone, count in blamed.items()
            if zone in tlds or zone == root_name()
        )
        assert blamed_infra / sum(blamed.values()) > 0.9

    def test_no_blame_without_attack(self, scenario):
        result = run_replay(scenario.built, scenario.trace("TRC1"),
                            ResilienceConfig.vanilla())
        assert result.server.failure_blame == {}

    def test_top_blamed_is_sorted(self, scenario):
        result = run_replay(
            scenario.built, scenario.trace("TRC1"),
            ResilienceConfig.vanilla(), attack=AttackSpec(),
        )
        top = result.server.top_blamed_zones(5)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
