"""Tests for the IRR churn model and server migration."""

import pytest

from repro.dns.errors import LameDelegationError, ZoneConfigError
from repro.dns.message import Question
from repro.dns.rrtypes import RRType
from repro.hierarchy.builder import HierarchyConfig, build_hierarchy
from repro.hierarchy.churn import (
    ChurnEvent,
    ChurnSchedule,
    apply_churn_event,
    fresh_server_set,
    generate_churn,
)

from tests.helpers import build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


class TestFreshServerSet:
    def test_mints_in_bailiwick_servers_with_glue(self):
        irrs, servers = fresh_server_set(name("z.test."), ttl=3600, count=3,
                                         generation=2)
        assert len(servers) == 3
        assert irrs.ns.ttl == 3600
        for server in servers:
            assert server.name.is_subdomain_of(name("z.test."))
            assert "g2" in str(server.name)
            assert irrs.glue_for(server.name) is not None

    def test_addresses_unique_and_outside_builder_space(self):
        irrs, servers = fresh_server_set(name("y.test."), 60, 4, 1)
        addresses = {server.address for server in servers}
        assert len(addresses) == 4
        assert all(address.startswith("172.") for address in addresses)


class TestMigration:
    def test_new_servers_answer_old_go_lame(self, mini):
        zone_name = name("example.test.")
        old_server = mini.tree.server_by_name(name("ns1.example.test."))
        irrs, servers = fresh_server_set(zone_name, 3600, 2, 1)
        mini.tree.migrate_zone_servers(zone_name, irrs, servers)

        # New servers answer authoritatively.
        question = Question(name("www.example.test."), RRType.A)
        response = servers[0].respond(question)
        assert response.authoritative and response.answer

        # Old server is lame for the zone now.
        with pytest.raises(LameDelegationError):
            old_server.respond(question)

    def test_parent_delegation_updated(self, mini):
        zone_name = name("example.test.")
        irrs, servers = fresh_server_set(zone_name, 3600, 2, 1)
        mini.tree.migrate_zone_servers(zone_name, irrs, servers)
        tld = mini.tree.zone(name("test."))
        delegation = tld.delegation_covering(zone_name)
        assert set(delegation.server_names()) == set(irrs.server_names())

    def test_decommission_removes_exclusive_servers_only(self, mini):
        # provider.test.'s servers also serve hosted.test. — migrating
        # provider.test. with decommission must NOT kill them.
        zone_name = name("provider.test.")
        survivor = mini.tree.server_by_name(name("ns1.provider.test."))
        irrs, servers = fresh_server_set(zone_name, 3600, 2, 1)
        mini.tree.migrate_zone_servers(zone_name, irrs, servers,
                                       decommission_old=True)
        assert mini.tree.server_by_name(survivor.name) is not None
        assert survivor.is_authoritative_for(name("hosted.test."))

        # But example.test.'s servers serve nothing else: they disappear.
        zone_name = name("example.test.")
        irrs2, servers2 = fresh_server_set(zone_name, 3600, 2, 2)
        # First withdraw dept (shared) so old servers become exclusive.
        mini.tree.migrate_zone_servers(
            name("dept.example.test."), *fresh_server_set(
                name("dept.example.test."), 3600, 2, 3
            ),
        )
        mini.tree.migrate_zone_servers(zone_name, irrs2, servers2,
                                       decommission_old=True)
        assert mini.tree.server_by_name(name("ns1.example.test.")) is None

    def test_replace_infrastructure_records_validates_zone(self, mini):
        zone = mini.tree.zone(name("example.test."))
        wrong, _ = fresh_server_set(name("other.test."), 60, 2, 1)
        with pytest.raises(ZoneConfigError):
            zone.replace_infrastructure_records(wrong)


class TestChurnGeneration:
    @pytest.fixture(scope="class")
    def built(self):
        return build_hierarchy(
            HierarchyConfig(num_tlds=6, num_slds=60, num_providers=2), seed=4
        )

    def test_events_within_window_and_sorted(self, built):
        schedule = generate_churn(built, start=100.0, end=500.0, zone_count=10,
                                  seed=1)
        times = [event.time for event in schedule.events]
        assert times == sorted(times)
        assert all(100.0 <= time < 500.0 for time in times)

    def test_only_exclusive_own_server_slds_chosen(self, built):
        schedule = generate_churn(built, 0.0, 100.0, zone_count=50, seed=2)
        for event in schedule.events:
            servers = built.tree.servers_for_zone(event.zone)
            assert all(s.zones_served() == (event.zone,) for s in servers)

    def test_deterministic(self, built):
        a = generate_churn(built, 0.0, 100.0, 5, seed=9)
        b = generate_churn(built, 0.0, 100.0, 5, seed=9)
        assert [e.zone for e in a.events] == [e.zone for e in b.events]

    def test_empty_window_rejected(self, built):
        with pytest.raises(ValueError):
            generate_churn(built, 10.0, 10.0, 1)

    def test_apply_event_end_to_end(self, built):
        schedule = generate_churn(built, 0.0, 100.0, 1, seed=3)
        event = schedule.events[0]
        before = set(
            built.tree.zone(event.zone).infrastructure_records.server_names()
        )
        apply_churn_event(built.tree, event)
        after = set(
            built.tree.zone(event.zone).infrastructure_records.server_names()
        )
        assert before.isdisjoint(after)
        assert built.tree.servers_for_zone(event.zone)

    def test_schedule_zones_and_len(self):
        schedule = ChurnSchedule(events=[
            ChurnEvent(5.0, name("b.test.")),
            ChurnEvent(1.0, name("a.test.")),
        ])
        assert len(schedule) == 2
        assert schedule.events[0].time == 1.0  # sorted on construction
        assert schedule.zones() == {name("a.test."), name("b.test.")}
