"""Tests for the synthetic hierarchy builder."""

import pytest

from repro.dns.name import root_name
from repro.dns.rrtypes import RRType
from repro.hierarchy.builder import HierarchyConfig, build_hierarchy


@pytest.fixture(scope="module")
def built():
    config = HierarchyConfig(num_tlds=10, num_slds=80, num_providers=3,
                             third_level_fraction=0.3)
    return build_hierarchy(config, seed=42)


class TestStructure:
    def test_root_exists_with_13ish_servers(self, built):
        hints = built.tree.root_hints()
        assert len(hints.server_names()) == HierarchyConfig().root_server_count \
            or len(hints.server_names()) == 13

    def test_tld_count(self, built):
        assert len(built.tree.tld_names()) == 10

    def test_well_known_gtlds_present(self, built):
        tlds = {str(tld) for tld in built.tree.tld_names()}
        assert {"com.", "net.", "org.", "edu."} <= tlds

    def test_sld_count_matches_config(self, built):
        slds = [z for z in built.tree.zone_names() if z.depth() == 2]
        assert len(slds) == 80  # providers included

    def test_providers_recorded(self, built):
        assert len(built.provider_zones) == 3
        for provider in built.provider_zones:
            assert built.tree.has_zone(provider)

    def test_some_zones_are_provider_hosted(self, built):
        # Provider-hosted zones have NS pointing outside their bailiwick.
        hosted = 0
        for zone in built.tree.zones():
            if zone.name.depth() != 2:
                continue
            irrs = zone.infrastructure_records
            if any(
                not server.is_subdomain_of(zone.name)
                for server in irrs.server_names()
            ):
                hosted += 1
        assert hosted > 5

    def test_third_level_zones_exist(self, built):
        thirds = [z for z in built.tree.zone_names() if z.depth() == 3]
        assert thirds

    def test_every_zone_resolvable_from_parent(self, built):
        # Every non-root zone must be delegated by its parent.
        for zone in built.tree.zones():
            if zone.name.is_root:
                continue
            parent = built.tree.parent_zone(zone.name)
            assert parent is not None
            delegation = parent.delegation_covering(zone.name)
            assert delegation is not None, f"{zone.name} not delegated"
            assert delegation.zone == zone.name

    def test_every_ns_target_has_an_address_somewhere(self, built):
        # NS names either have glue or correspond to a registered server.
        for zone in built.tree.zones():
            for server_name in zone.infrastructure_records.server_names():
                server = built.tree.server_by_name(server_name)
                assert server is not None, f"{server_name} unresolvable"

    def test_catalog_covers_leaf_zones(self, built):
        for zone_name, hosts in built.catalog.items():
            assert hosts, f"{zone_name} has no hosts"
            zone = built.tree.zone(zone_name)
            for host in hosts:
                assert zone.lookup(host, RRType.A) is not None

    def test_leaf_zone_names(self, built):
        leaves = built.leaf_zone_names()
        assert root_name() not in leaves
        assert len(leaves) > 50


class TestDeterminismAndConfig:
    def test_same_seed_same_tree(self):
        config = HierarchyConfig(num_tlds=5, num_slds=20, num_providers=2)
        first = build_hierarchy(config, seed=1)
        second = build_hierarchy(config, seed=1)
        assert set(first.tree.zone_names()) == set(second.tree.zone_names())
        assert first.tree.root_hints().ns.ttl == second.tree.root_hints().ns.ttl

    def test_different_seed_different_tree(self):
        config = HierarchyConfig(num_tlds=5, num_slds=20, num_providers=2)
        first = build_hierarchy(config, seed=1)
        second = build_hierarchy(config, seed=2)
        assert set(first.tree.zone_names()) != set(second.tree.zone_names())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(num_tlds=0)
        with pytest.raises(ValueError):
            HierarchyConfig(num_slds=2, num_providers=5)
        with pytest.raises(ValueError):
            HierarchyConfig(provider_hosted_fraction=1.5)

    def test_tld_irr_ttls_are_long(self, built):
        # Paper §3.2: zones below the root carry long TTLs.
        for tld in built.tree.tld_names():
            zone = built.tree.zone(tld)
            assert zone.infrastructure_records.ns.ttl >= 86400.0
