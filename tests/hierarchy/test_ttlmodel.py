"""Tests for the TTL distribution model."""

import random

from repro.hierarchy.ttlmodel import DAY, HOUR, MINUTE, TtlBucket, TtlModel


class TestTtlModel:
    def test_root_and_tld_ttls_fixed(self):
        model = TtlModel()
        rng = random.Random(0)
        assert model.sample_irr_ttl(rng, depth=0) == model.root_irr_ttl
        assert model.sample_irr_ttl(rng, depth=1) == model.tld_irr_ttl
        assert model.root_irr_ttl > model.tld_irr_ttl > DAY

    def test_sld_irr_ttls_span_minutes_to_days(self):
        model = TtlModel()
        rng = random.Random(1)
        samples = [model.sample_irr_ttl(rng, depth=2) for _ in range(2000)]
        assert min(samples) < HOUR
        assert max(samples) > DAY
        # Paper: "most zones have a TTL value less or equal to 12 hours".
        at_most_12h = sum(1 for ttl in samples if ttl <= 12 * HOUR)
        assert at_most_12h / len(samples) > 0.5

    def test_data_ttls_skew_shorter_than_irr_ttls(self):
        model = TtlModel()
        rng = random.Random(2)
        data = [model.sample_data_ttl(rng) for _ in range(2000)]
        irrs = [model.sample_irr_ttl(rng, depth=2) for _ in range(2000)]
        assert sum(data) / len(data) < sum(irrs) / len(irrs)

    def test_samples_within_bucket_bounds(self):
        bucket = TtlBucket(1.0, 5 * MINUTE, 30 * MINUTE)
        rng = random.Random(3)
        for _ in range(100):
            value = bucket.sample(rng)
            assert 5 * MINUTE <= value <= 30 * MINUTE

    def test_deterministic_given_rng(self):
        model = TtlModel()
        first = [model.sample_irr_ttl(random.Random(7), 2) for _ in range(5)]
        second = [model.sample_irr_ttl(random.Random(7), 2) for _ in range(5)]
        assert first == second
