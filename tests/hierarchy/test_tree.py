"""Tests for the zone tree."""

import pytest

from repro.dns.rrtypes import RRType
from tests.helpers import build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


class TestLookups:
    def test_zone_by_name(self, mini):
        assert mini.tree.zone(name("test.")).name == name("test.")
        with pytest.raises(KeyError):
            mini.tree.zone(name("missing."))

    def test_has_zone(self, mini):
        assert mini.tree.has_zone(name("example.test."))
        assert not mini.tree.has_zone(name("www.example.test."))

    def test_counts(self, mini):
        assert mini.tree.zone_count() == 7
        assert mini.tree.server_count() == 9

    def test_server_by_address_and_name(self, mini):
        address = mini.address_of("ns1.test.")
        server = mini.tree.server_by_address(address)
        assert server is mini.tree.server_by_name(name("ns1.test."))
        assert mini.tree.server_by_address("203.0.113.1") is None

    def test_servers_for_zone(self, mini):
        servers = mini.tree.servers_for_zone(name("test."))
        assert {str(s.name) for s in servers} == {"ns1.test.", "ns2.test."}
        assert mini.tree.servers_for_zone(name("nope.")) == []

    def test_addresses_for_zone(self, mini):
        addresses = mini.tree.addresses_for_zone(name("hosted.test."))
        assert addresses == [
            mini.address_of("ns1.provider.test."),
            mini.address_of("ns2.provider.test."),
        ]

    def test_enclosing_zone(self, mini):
        assert mini.tree.enclosing_zone(name("www.dept.example.test.")).name == \
            name("dept.example.test.")
        assert mini.tree.enclosing_zone(name("anything.unknown.")).name == name(".")

    def test_parent_zone(self, mini):
        assert mini.tree.parent_zone(name("example.test.")).name == name("test.")
        assert mini.tree.parent_zone(name(".")) is None

    def test_root_hints(self, mini):
        hints = mini.tree.root_hints()
        assert hints.zone == name(".")
        assert len(hints.server_names()) == 2


class TestStructure:
    def test_children_and_descendants(self, mini):
        tlds = set(mini.tree.children_of(name(".")))
        assert tlds == {name("test."), name("alt.")}
        descendants = set(mini.tree.descendants_of(name("test.")))
        assert name("example.test.") in descendants
        assert name("dept.example.test.") in descendants
        assert name("alt.") not in descendants

    def test_tld_names(self, mini):
        assert set(mini.tree.tld_names()) == {name("test."), name("alt.")}

    def test_total_record_count_positive(self, mini):
        assert mini.tree.total_record_count() > 20

    def test_duplicate_zone_rejected(self, mini):
        zone = mini.tree.zone(name("alt."))
        with pytest.raises(ValueError):
            mini.tree.add_zone(zone, mini.tree.servers_for_zone(name("alt.")))


class TestLongTtl:
    def test_apply_long_ttl_changes_child_and_parent_copies(self, mini):
        changed = mini.tree.apply_long_ttl(3 * 86400.0)
        assert changed == 7
        sld = mini.tree.zone(name("example.test."))
        assert sld.infrastructure_records.ns.ttl == 3 * 86400.0
        tld = mini.tree.zone(name("test."))
        delegation = tld.delegation_covering(name("example.test."))
        assert delegation.ns.ttl == 3 * 86400.0

    def test_apply_long_ttl_leaves_data_records(self, mini):
        mini.tree.apply_long_ttl(3 * 86400.0)
        sld = mini.tree.zone(name("example.test."))
        data = sld.lookup(name("www.example.test."), RRType.A)
        assert data.ttl == 600.0

    def test_apply_long_ttl_with_filter(self, mini):
        changed = mini.tree.apply_long_ttl(
            3 * 86400.0, zone_filter=[name("example.test."), name("ghost.")]
        )
        assert changed == 1
        untouched = mini.tree.zone(name("provider.test."))
        assert untouched.infrastructure_records.ns.ttl == 3600.0

    def test_capture_restore_roundtrip(self, mini):
        state = mini.tree.capture_irr_state()
        mini.tree.apply_long_ttl(5 * 86400.0)
        mini.tree.restore_irr_state(state)
        sld = mini.tree.zone(name("example.test."))
        assert sld.infrastructure_records.ns.ttl == 3600.0
        tld = mini.tree.zone(name("test."))
        assert tld.delegation_covering(name("example.test.")).ns.ttl == 3600.0
