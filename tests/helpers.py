"""Hand-built miniature DNS hierarchies for deterministic unit tests.

The synthetic :mod:`repro.hierarchy.builder` is great for experiments but
randomises TTLs and structure; unit tests need exact control.
:func:`build_mini_internet` constructs, by hand::

    .  (root, 2 servers, NS TTL 6 d)
    ├── test.                 (TLD, 2 servers, NS TTL 2 d)
    │   ├── example.test.     (SLD, own servers, NS TTL 1 h, www/mail hosts)
    │   │   └── dept.example.test.  (3LD served by example.test's servers)
    │   ├── hosted.test.      (SLD outsourced to provider's servers, no glue)
    │   └── provider.test.    (the DNS provider, own servers + glue)
    └── alt.                  (second TLD, 1 server, empty except apex)

All addresses are deterministic (10.0.0.x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import ZoneBuilder
from repro.hierarchy.tree import ZoneTree

HOUR = 3600.0
DAY = 86400.0


def name(text: str) -> Name:
    """Shorthand for Name.from_text."""
    return Name.from_text(text)


@dataclass
class MiniInternet:
    """The hand-built tree plus handy references for assertions."""

    tree: ZoneTree
    addresses: dict[str, str] = field(default_factory=dict)
    """server hostname text -> address."""

    ttls: dict[str, float] = field(default_factory=dict)
    """zone apex text -> NS TTL."""

    def address_of(self, server: str) -> str:
        return self.addresses[server]


def _irrs(
    zone: str, servers: list[tuple[str, str]], ttl: float
) -> InfrastructureRecordSet:
    """In-bailiwick IRRs for ``zone`` from (hostname, address) pairs."""
    zone_name = name(zone)
    ns_records = [
        ResourceRecord(zone_name, RRType.NS, ttl, name(host))
        for host, _ in servers
    ]
    glue = tuple(
        RRset.from_records([ResourceRecord(name(host), RRType.A, ttl, address)])
        for host, address in servers
    )
    return InfrastructureRecordSet(zone_name, RRset.from_records(ns_records), glue)


def _ns_only_irrs(
    zone: str, servers: list[str], ttl: float
) -> InfrastructureRecordSet:
    """Glue-less (out-of-bailiwick) IRRs."""
    zone_name = name(zone)
    ns_records = [
        ResourceRecord(zone_name, RRType.NS, ttl, name(host)) for host in servers
    ]
    return InfrastructureRecordSet(zone_name, RRset.from_records(ns_records))


def build_mini_internet(
    sld_ns_ttl: float = 1 * HOUR,
    data_ttl: float = 10 * 60.0,
    tld_ns_ttl: float = 2 * DAY,
) -> MiniInternet:
    """Construct the fixed miniature hierarchy described in the module doc."""
    mini = MiniInternet(tree=ZoneTree())
    next_address = [0]

    def alloc() -> str:
        value = next_address[0]
        next_address[0] += 1
        return f"10.0.{value // 250}.{value % 250 + 1}"

    def make_servers(pairs: list[str]) -> list[tuple[str, str]]:
        result = []
        for host in pairs:
            address = alloc()
            mini.addresses[host] = address
            result.append((host, address))
        return result

    root_ttl = 6 * DAY
    mini.ttls["."] = root_ttl
    mini.ttls["test."] = tld_ns_ttl
    mini.ttls["alt."] = tld_ns_ttl
    mini.ttls["example.test."] = sld_ns_ttl
    mini.ttls["hosted.test."] = sld_ns_ttl
    mini.ttls["provider.test."] = sld_ns_ttl
    mini.ttls["dept.example.test."] = sld_ns_ttl

    root_servers = make_servers(["a.root.", "b.root."])
    test_servers = make_servers(["ns1.test.", "ns2.test."])
    alt_servers = make_servers(["ns1.alt."])
    example_servers = make_servers(["ns1.example.test.", "ns2.example.test."])
    provider_servers = make_servers(["ns1.provider.test.", "ns2.provider.test."])

    test_irrs = _irrs("test.", test_servers, tld_ns_ttl)
    alt_irrs = _irrs("alt.", alt_servers, tld_ns_ttl)
    example_irrs = _irrs("example.test.", example_servers, sld_ns_ttl)
    provider_irrs = _irrs("provider.test.", provider_servers, sld_ns_ttl)
    hosted_irrs = _ns_only_irrs(
        "hosted.test.", ["ns1.provider.test.", "ns2.provider.test."], sld_ns_ttl
    )
    dept_irrs = _ns_only_irrs(
        "dept.example.test.",
        ["ns1.example.test.", "ns2.example.test."],
        sld_ns_ttl,
    )

    # Root zone.
    root_builder = ZoneBuilder(name("."), default_ttl=root_ttl)
    for host, address in root_servers:
        root_builder.add_ns(host, address, ttl=root_ttl)
    root_builder.delegate(test_irrs)
    root_builder.delegate(alt_irrs)
    root_zone = root_builder.build()
    mini.tree.add_zone(
        root_zone,
        [AuthoritativeServer(name(host), addr) for host, addr in root_servers],
    )

    # test. TLD.
    test_builder = ZoneBuilder(name("test."), default_ttl=tld_ns_ttl)
    for host, address in test_servers:
        test_builder.add_ns(host, address, ttl=tld_ns_ttl)
    test_builder.delegate(example_irrs)
    test_builder.delegate(provider_irrs)
    test_builder.delegate(hosted_irrs)
    mini.tree.add_zone(
        test_builder.build(),
        [AuthoritativeServer(name(host), addr) for host, addr in test_servers],
    )

    # alt. TLD (empty besides apex).
    alt_builder = ZoneBuilder(name("alt."), default_ttl=tld_ns_ttl)
    for host, address in alt_servers:
        alt_builder.add_ns(host, address, ttl=tld_ns_ttl)
    mini.tree.add_zone(
        alt_builder.build(),
        [AuthoritativeServer(name(host), addr) for host, addr in alt_servers],
    )

    # example.test. with hosts and a CNAME, delegating dept.
    example_builder = ZoneBuilder(name("example.test."), default_ttl=sld_ns_ttl)
    for host, address in example_servers:
        example_builder.add_ns(host, address, ttl=sld_ns_ttl)
    example_builder.add_address("www.example.test.", alloc(), ttl=data_ttl)
    example_builder.add_address("mail.example.test.", alloc(), ttl=data_ttl)
    example_builder.add_record(
        ResourceRecord(
            name("web.example.test."), RRType.CNAME, data_ttl,
            name("www.example.test."),
        )
    )
    example_builder.delegate(dept_irrs)
    example_zone_servers = [
        AuthoritativeServer(name(host), addr) for host, addr in example_servers
    ]
    mini.tree.add_zone(example_builder.build(), example_zone_servers)

    # dept.example.test. served by the example servers.
    dept_builder = ZoneBuilder(name("dept.example.test."), default_ttl=sld_ns_ttl)
    for record in dept_irrs.ns:
        dept_builder.add_ns_record(record)
    dept_builder.add_address("www.dept.example.test.", alloc(), ttl=data_ttl)
    mini.tree.add_zone(dept_builder.build(), example_zone_servers)

    # provider.test. with its own servers.
    provider_builder = ZoneBuilder(name("provider.test."), default_ttl=sld_ns_ttl)
    for host, address in provider_servers:
        provider_builder.add_ns(host, address, ttl=sld_ns_ttl)
    provider_builder.add_address("www.provider.test.", alloc(), ttl=data_ttl)
    provider_zone_servers = [
        AuthoritativeServer(name(host), addr) for host, addr in provider_servers
    ]
    mini.tree.add_zone(provider_builder.build(), provider_zone_servers)

    # hosted.test. served by the provider's servers (out-of-bailiwick NS).
    hosted_builder = ZoneBuilder(name("hosted.test."), default_ttl=sld_ns_ttl)
    for record in hosted_irrs.ns:
        hosted_builder.add_ns_record(record)
    hosted_builder.add_address("www.hosted.test.", alloc(), ttl=data_ttl)
    mini.tree.add_zone(hosted_builder.build(), provider_zone_servers)

    return mini
