"""Metric sinks: binning, JSONL goldens, Prometheus rendering."""

import io

import pytest

from repro.obs import (
    EventBus,
    EventKind,
    JsonlSink,
    MetricSink,
    PrometheusSink,
    TimeSeriesSink,
)


class TestTimeSeriesSink:
    def test_bin_width_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSink(0.0)

    def test_counts_fall_into_fixed_width_bins(self):
        bus = EventBus()
        sink = TimeSeriesSink(bin_width=10.0).attach(bus)
        for time in (0.0, 1.0, 9.999, 10.0, 25.0):
            bus.emit(EventKind.CACHE_HIT, time)
        bus.emit(EventKind.CACHE_MISS, 25.0)
        assert sink.series(EventKind.CACHE_HIT) == [
            (0.0, 3), (10.0, 1), (20.0, 1),
        ]
        assert sink.series(EventKind.CACHE_MISS) == [(20.0, 1)]
        assert sink.series(EventKind.STUB_QUERY) == []
        assert sink.total(EventKind.CACHE_HIT) == 5
        assert sink.kinds() == (EventKind.CACHE_HIT, EventKind.CACHE_MISS)
        assert sink.as_dict() == {
            "cache.hit": [(0.0, 3), (10.0, 1), (20.0, 1)],
            "cache.miss": [(20.0, 1)],
        }


class TestJsonlSink:
    def test_requires_exactly_one_destination(self):
        with pytest.raises(ValueError):
            JsonlSink()
        with pytest.raises(ValueError):
            JsonlSink(path="x.jsonl", stream=io.StringIO())

    def test_golden_stream(self):
        bus = EventBus()
        stream = io.StringIO()
        sink = JsonlSink(stream=stream).attach(bus)
        bus.emit(EventKind.STUB_QUERY, 1.5, name="a.com.", rrtype="A")
        bus.emit(EventKind.CACHE_MISS, 1.5, name="a.com.", rrtype="A")
        sink.close()
        assert stream.getvalue() == (
            '{"kind":"stub.query","name":"a.com.","rrtype":"A","seq":0,"t":1.5}\n'
            '{"kind":"cache.miss","name":"a.com.","rrtype":"A","seq":1,"t":1.5}\n'
        )
        assert sink.lines_written == 2

    def test_path_backed_sink_writes_empty_file_without_events(self, tmp_path):
        target = tmp_path / "events.jsonl"
        sink = JsonlSink(path=target)
        sink.close()
        assert target.read_text(encoding="utf-8") == ""


class TestPrometheusSink:
    def test_golden_render(self):
        bus = EventBus()
        sink = PrometheusSink().attach(bus)
        bus.emit(EventKind.STUB_QUERY, 1.0)
        bus.emit(EventKind.CACHE_HIT, 2.0)
        bus.emit(EventKind.CACHE_HIT, 3.5)
        assert sink.render() == (
            "# HELP repro_events_total Simulation events by kind.\n"
            "# TYPE repro_events_total counter\n"
            'repro_events_total{kind="cache.hit"} 2\n'
            'repro_events_total{kind="stub.query"} 1\n'
            "# HELP repro_events_seen_total All simulation events.\n"
            "# TYPE repro_events_seen_total counter\n"
            "repro_events_seen_total 3\n"
            "# HELP repro_last_event_seconds Virtual time of the last event.\n"
            "# TYPE repro_last_event_seconds gauge\n"
            "repro_last_event_seconds 3.5\n"
        )

    def test_write(self, tmp_path):
        sink = PrometheusSink()
        target = tmp_path / "metrics.prom"
        sink.write(target)
        assert "repro_events_seen_total 0" in target.read_text(encoding="utf-8")


def test_all_sinks_satisfy_the_protocol():
    sinks = (
        TimeSeriesSink(1.0),
        JsonlSink(stream=io.StringIO()),
        PrometheusSink(),
    )
    for sink in sinks:
        assert isinstance(sink, MetricSink)
