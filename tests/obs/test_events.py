"""Event bus semantics: ordering, sequence numbers, targeted fan-out."""

from repro.obs import Event, EventBus, EventKind


class TestEvent:
    def test_data_lookup(self):
        event = Event(seq=0, time=1.0, kind=EventKind.CACHE_HIT,
                      data=(("name", "a.com."), ("remaining", 3.5)))
        assert event.get("name") == "a.com."
        assert event.get("remaining") == 3.5
        assert event.get("absent") is None

    def test_to_json_is_canonical(self):
        event = Event(seq=7, time=2.5, kind=EventKind.STUB_QUERY,
                      data=(("name", "x."), ("rrtype", "A")))
        assert event.to_json() == (
            '{"kind":"stub.query","name":"x.","rrtype":"A","seq":7,"t":2.5}'
        )


class TestEventBus:
    def test_emit_without_subscribers_returns_none_but_counts(self):
        bus = EventBus()
        assert bus.emit(EventKind.CACHE_HIT, 1.0) is None
        assert bus.emit(EventKind.CACHE_MISS, 2.0) is None
        assert bus.emitted == 2

    def test_seq_keeps_counting_across_subscriber_changes(self):
        bus = EventBus()
        bus.emit(EventKind.CACHE_HIT, 1.0)  # unobserved, still seq 0
        seen: list[Event] = []
        bus.subscribe(seen.append)
        event = bus.emit(EventKind.CACHE_MISS, 2.0)
        assert event is not None and event.seq == 1

    def test_delivery_preserves_emission_order(self):
        bus = EventBus()
        seen: list[Event] = []
        bus.subscribe(seen.append)
        for index in range(10):
            kind = EventKind.CACHE_HIT if index % 2 else EventKind.CACHE_MISS
            bus.emit(kind, float(index))
        assert [event.seq for event in seen] == list(range(10))
        assert [event.time for event in seen] == [float(i) for i in range(10)]

    def test_targeted_subscription_filters_kinds(self):
        bus = EventBus()
        hits: list[Event] = []
        everything: list[Event] = []
        bus.subscribe(hits.append, kinds=[EventKind.CACHE_HIT])
        bus.subscribe(everything.append)
        bus.emit(EventKind.CACHE_HIT, 1.0)
        bus.emit(EventKind.CACHE_MISS, 2.0)
        bus.emit(EventKind.CACHE_HIT, 3.0)
        assert [e.kind for e in hits] == [EventKind.CACHE_HIT] * 2
        assert len(everything) == 3

    def test_global_subscribers_see_events_before_targeted_ones(self):
        bus = EventBus()
        order: list[str] = []
        bus.subscribe(lambda event: order.append("targeted"),
                      kinds=[EventKind.CACHE_HIT])
        bus.subscribe(lambda event: order.append("global"))
        bus.emit(EventKind.CACHE_HIT, 1.0)
        assert order == ["global", "targeted"]

    def test_data_is_key_sorted(self):
        bus = EventBus()
        seen: list[Event] = []
        bus.subscribe(seen.append)
        bus.emit(EventKind.QUERY_ISSUED, 1.0, zone="z.", qname="a.z.",
                 renewal=False)
        assert seen[0].data == (
            ("qname", "a.z."), ("renewal", False), ("zone", "z."),
        )
