"""Flight recorder: ring eviction and whole-run counters."""

import pytest

from repro.obs import EventBus, EventKind, FlightRecorder


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_ring_evicts_oldest_but_counters_keep_totals():
    bus = EventBus()
    recorder = FlightRecorder(capacity=4).attach(bus)
    for index in range(10):
        bus.emit(EventKind.CACHE_HIT, float(index))
    assert recorder.seen == 10
    assert recorder.dropped == 6
    retained = recorder.events()
    assert [event.time for event in retained] == [6.0, 7.0, 8.0, 9.0]
    assert recorder.count_of(EventKind.CACHE_HIT) == 10


def test_last_returns_tail_oldest_first():
    bus = EventBus()
    recorder = FlightRecorder(capacity=8).attach(bus)
    for index in range(5):
        bus.emit(EventKind.STUB_QUERY, float(index))
    assert [e.time for e in recorder.last(2)] == [3.0, 4.0]
    assert len(recorder.last(100)) == 5
    assert recorder.last(0) == ()


def test_counts_by_kind_sorted_by_kind_value():
    bus = EventBus()
    recorder = FlightRecorder(capacity=4).attach(bus)
    bus.emit(EventKind.STUB_QUERY, 0.0)
    bus.emit(EventKind.CACHE_MISS, 0.0)
    bus.emit(EventKind.CACHE_MISS, 1.0)
    assert recorder.counts_by_kind() == {"cache.miss": 2, "stub.query": 1}
    assert list(recorder.counts_by_kind()) == ["cache.miss", "stub.query"]
