"""Observability end-to-end: determinism and zero perturbation.

The two properties the tentpole promises: an observed replay produces a
byte-identical event log for the same spec + seed (serial or fanned over
workers), and attaching observation does not change the simulation.
"""

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.scenarios import Scale, make_scenario
from repro.obs import EventKind, ObservationSpec, StageTimings

HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


def observed_replay(scenario, tmp_path, tag, seed=0):
    events = tmp_path / f"events-{tag}.jsonl"
    metrics = tmp_path / f"metrics-{tag}.prom"
    result = run_replay(
        scenario.built,
        scenario.trace("TRC1"),
        ResilienceConfig.combination(),
        attack=AttackSpec(start=scenario.attack_start, duration=6 * HOUR),
        seed=seed,
        observe=ObservationSpec(events_path=str(events),
                                metrics_path=str(metrics),
                                bin_width=HOUR),
    )
    return result, events.read_bytes(), metrics.read_bytes()


class TestDeterminism:
    def test_same_seed_byte_identical_outputs(self, scenario, tmp_path):
        first, events_a, metrics_a = observed_replay(scenario, tmp_path, "a")
        second, events_b, metrics_b = observed_replay(scenario, tmp_path, "b")
        assert first.event_count == second.event_count > 0
        assert events_a == events_b
        assert metrics_a == metrics_b

    def test_different_seed_differs(self, scenario, tmp_path):
        _, events_a, _ = observed_replay(scenario, tmp_path, "s0", seed=0)
        _, events_b, _ = observed_replay(scenario, tmp_path, "s1", seed=1)
        assert events_a != events_b

    def test_worker_fanout_matches_serial(self, scenario, tmp_path):
        def specs(tag):
            return [
                ReplaySpec.for_scenario(
                    scenario, trace_name, ResilienceConfig.refresh(),
                    attack=AttackSpec(start=scenario.attack_start,
                                      duration=6 * HOUR),
                    observe=ObservationSpec(
                        events_path=str(tmp_path / f"{tag}-{trace_name}.jsonl")
                    ),
                )
                for trace_name in ("TRC1", "TRC2")
            ]

        serial = run_replays(specs("serial"), workers=1)
        fanned = run_replays(specs("fanned"), workers=2)
        assert fanned == serial
        for trace_name in ("TRC1", "TRC2"):
            serial_log = (tmp_path / f"serial-{trace_name}.jsonl").read_bytes()
            fanned_log = (tmp_path / f"fanned-{trace_name}.jsonl").read_bytes()
            assert serial_log == fanned_log
            assert serial_log


class TestZeroPerturbation:
    def test_observed_replay_matches_unobserved_metrics(self, scenario):
        attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
        plain = run_replay(scenario.built, scenario.trace("TRC1"),
                           ResilienceConfig.combination(), attack=attack)
        observed = run_replay(scenario.built, scenario.trace("TRC1"),
                              ResilienceConfig.combination(), attack=attack,
                              observe=ObservationSpec())
        assert observed.metrics == plain.metrics
        assert observed.window == plain.window
        assert observed.event_count > 0
        assert plain.event_count == 0
        assert plain.recorder is None

    def test_summary_equality_ignores_observation(self, scenario):
        plain = run_replay(scenario.built, scenario.trace("TRC1"),
                           ResilienceConfig.vanilla())
        observed = run_replay(scenario.built, scenario.trace("TRC1"),
                              ResilienceConfig.vanilla(),
                              observe=ObservationSpec())
        plain_summary = plain.to_summary()
        observed_summary = observed.to_summary()
        assert plain_summary.sr_failure_rate == observed_summary.sr_failure_rate
        assert plain_summary.total_outgoing == observed_summary.total_outgoing
        assert plain_summary.total_bytes == observed_summary.total_bytes


class TestObservationArtifacts:
    def test_recorder_and_timeseries_surface_on_result(self, scenario):
        result = run_replay(
            scenario.built, scenario.trace("TRC1"),
            ResilienceConfig.combination(),
            attack=AttackSpec(start=scenario.attack_start, duration=6 * HOUR),
            observe=ObservationSpec(ring_size=64, bin_width=HOUR),
        )
        assert result.recorder is not None
        assert result.recorder.seen == result.event_count
        assert result.recorder.count_of(EventKind.STUB_QUERY) == len(
            scenario.trace("TRC1")
        )
        assert result.recorder.count_of(EventKind.ATTACK_START) == 1
        assert result.recorder.count_of(EventKind.ATTACK_END) == 1
        assert result.timeseries is not None
        issued = result.timeseries.series(EventKind.QUERY_ISSUED)
        assert sum(count for _, count in issued) > 0
        assert result.timeseries.total(EventKind.QUERY_ISSUED) == sum(
            count for _, count in issued
        )

    def test_stage_timings_populated(self, scenario):
        timings = StageTimings()
        run_replay(scenario.built, scenario.trace("TRC1"),
                   ResilienceConfig.vanilla(), timings=timings)
        assert set(timings.stage_names()) == {"setup", "replay", "finalize"}
        assert timings.stats("replay").wall_seconds > 0.0
        rendered = timings.render()
        assert "replay" in rendered and "wall" in rendered
