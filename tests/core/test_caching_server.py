"""Unit tests for the caching server's iterative resolution, refresh,
renewal, stale serving and gap hooks — all against the deterministic
hand-built mini internet."""

import pytest

from repro.core.config import ResilienceConfig
from repro.core.caching_server import ResolutionOutcome
from repro.dns.rrtypes import RRType
from repro.simulation.attack import attack_on_root_and_tlds, attack_on_zones

from tests.conftest import make_stack
from tests.helpers import HOUR, build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


class TestIterativeResolution:
    def test_cold_resolution_walks_root_tld_sld(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        resolution = server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        assert resolution.outcome is ResolutionOutcome.ANSWERED
        assert resolution.answer is not None
        # Exactly three hops: root referral, TLD referral, SLD answer.
        assert metrics.cs_demand_queries == 3
        assert metrics.cs_demand_failures == 0

    def test_repeat_query_is_cache_hit(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        second = server.handle_stub_query(name("www.example.test."), RRType.A, 1.0)
        assert second.outcome is ResolutionOutcome.CACHE_HIT

    def test_sibling_query_reuses_cached_irrs(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        before = metrics.cs_demand_queries
        server.handle_stub_query(name("mail.example.test."), RRType.A, 1.0)
        # Zone IRRs cached: a single query straight to the SLD.
        assert metrics.cs_demand_queries == before + 1

    def test_cname_chased_across_answer(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        resolution = server.handle_stub_query(name("web.example.test."), RRType.A, 0.0)
        assert resolution.outcome is ResolutionOutcome.ANSWERED
        assert resolution.answer.rrtype is RRType.A

    def test_nxdomain_and_negative_cache(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        first = server.handle_stub_query(name("ghost.example.test."), RRType.A, 0.0)
        assert first.outcome is ResolutionOutcome.NXDOMAIN
        queries_after_first = metrics.cs_demand_queries
        second = server.handle_stub_query(name("ghost.example.test."), RRType.A, 1.0)
        assert second.outcome is ResolutionOutcome.NXDOMAIN
        assert metrics.cs_demand_queries == queries_after_first  # served negatively

    def test_nodata_for_missing_type(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        resolution = server.handle_stub_query(name("www.example.test."), RRType.MX, 0.0)
        assert resolution.outcome is ResolutionOutcome.NODATA

    def test_glueless_zone_resolves_via_provider(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        resolution = server.handle_stub_query(name("www.hosted.test."), RRType.A, 0.0)
        assert resolution.outcome is ResolutionOutcome.ANSWERED
        # The walk had to resolve ns*.provider.test. A records first.
        a_entry = server.cache.entry(name("ns1.provider.test."), RRType.A)
        assert a_entry is not None

    def test_third_level_zone_resolution(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        resolution = server.handle_stub_query(
            name("www.dept.example.test."), RRType.A, 0.0
        )
        assert resolution.outcome is ResolutionOutcome.ANSWERED

    def test_sr_metrics_recorded(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        server.handle_stub_query(name("www.example.test."), RRType.A, 1.0)
        assert metrics.sr_queries == 2
        assert metrics.sr_cache_hits == 1
        assert metrics.sr_failures == 0


class TestRefresh:
    def test_vanilla_does_not_extend_irr_ttl(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first_expiry = server.cache.zone_ns_expiry(name("example.test."), 0.0)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 100.0)
        assert server.cache.zone_ns_expiry(name("example.test."), 100.0) == first_expiry

    def test_refresh_extends_irr_ttl_on_every_answer(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.refresh())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first_expiry = server.cache.zone_ns_expiry(name("example.test."), 0.0)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 100.0)
        refreshed = server.cache.zone_ns_expiry(name("example.test."), 100.0)
        assert refreshed == pytest.approx(first_expiry + 100.0)

    def test_refresh_does_not_touch_data_records(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.refresh())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        data_expiry = server.cache.expires_at(name("www.example.test."), RRType.A, 0.0)
        assert data_expiry == pytest.approx(600.0)  # data TTL, unrefreshed

    def test_zone_kept_alive_by_steady_queries(self, mini):
        # The paper's Figure 2 "refresh" scenario: queries at intervals
        # shorter than the 1 h NS TTL keep the IRRs cached forever.
        server, *_ = make_stack(mini, ResilienceConfig.refresh())
        hosts = ["www", "mail"]
        time = 0.0
        for step in range(10):
            qname = name(f"{hosts[step % 2]}.example.test.")
            resolution = server.handle_stub_query(qname, RRType.A, time)
            assert not resolution.failed
            time += 0.9 * HOUR
        assert server.cache.zone_ns_expiry(name("example.test."), time) is not None


class TestAttackBehaviour:
    def test_uncached_zone_fails_during_root_tld_attack(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=0.0, duration=HOUR)
        server, engine, network, metrics = make_stack(
            mini, ResilienceConfig.vanilla(), attacks=attacks
        )
        resolution = server.handle_stub_query(name("www.example.test."), RRType.A, 10.0)
        assert resolution.outcome is ResolutionOutcome.FAILURE
        assert metrics.sr_failures == 1
        assert metrics.cs_demand_failures > 0

    def test_cached_irrs_survive_attack(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=100.0, duration=HOUR)
        server, *_ = make_stack(mini, ResilienceConfig.vanilla(), attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("mail.example.test."), RRType.A, 200.0)
        assert during.outcome is ResolutionOutcome.ANSWERED  # straight to SLD

    def test_expired_irrs_fail_during_attack(self, mini):
        # SLD NS TTL is 1 h; attack starts at 2 h, query at 2.5 h.
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        server, *_ = make_stack(mini, ResilienceConfig.vanilla(), attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("mail.example.test."), RRType.A,
                                          2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.FAILURE

    def test_refresh_keeps_zone_reachable_through_attack(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        server, *_ = make_stack(mini, ResilienceConfig.refresh(), attacks=attacks)
        # Steady queries every 30 min keep refreshing the 1 h NS TTL; the
        # last refresh (t=1.5 h) carries the IRRs to 2.5 h.
        time = 0.0
        for _ in range(4):
            server.handle_stub_query(name("www.example.test."), RRType.A, time)
            time += 0.5 * HOUR
        during = server.handle_stub_query(name("mail.example.test."), RRType.A,
                                          2.4 * HOUR)
        assert during.outcome is ResolutionOutcome.ANSWERED

    def test_attack_on_provider_breaks_hosted_zone(self, mini):
        attacks = attack_on_zones(mini.tree, [name("provider.test.")],
                                  start=0.0, duration=HOUR)
        server, *_ = make_stack(mini, ResilienceConfig.vanilla(), attacks=attacks)
        resolution = server.handle_stub_query(name("www.hosted.test."), RRType.A, 10.0)
        assert resolution.outcome is ResolutionOutcome.FAILURE

    def test_partial_server_failure_falls_through_to_live_server(self, mini):
        # Block only example.test.'s first server address via a fake
        # attack on a zone that shares just that server: simulate by
        # attacking example.test. and checking retries count failures.
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)
        server, engine, network, metrics = make_stack(
            mini, ResilienceConfig.vanilla(), attacks=attacks
        )
        resolution = server.handle_stub_query(name("www.example.test."), RRType.A, 1.0)
        assert resolution.outcome is ResolutionOutcome.FAILURE
        # It tried both SLD servers (both blocked) after the referrals.
        assert metrics.cs_demand_failures >= 2


class TestRenewalIntegration:
    def test_renewal_keeps_popular_zone_cached_past_ttl(self, mini):
        config = ResilienceConfig.refresh_renew("lru", 3)
        server, engine, *_ = make_stack(mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # 1 h NS TTL, credit 3 -> survives to ~4 h without any queries.
        engine.advance_to(3.5 * HOUR)
        assert server.cache.zone_ns_expiry(name("example.test."), 3.5 * HOUR) is not None
        engine.advance_to(6 * HOUR)
        assert server.cache.zone_ns_expiry(name("example.test."), 6 * HOUR) is None

    def test_renewal_refetch_goes_to_child_not_parent(self, mini):
        config = ResilienceConfig.refresh_renew("lru", 1)
        server, engine, network, metrics = make_stack(mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        demand_before = metrics.cs_demand_queries
        engine.advance_to(1.5 * HOUR)  # past the 1 h expiry -> one renewal
        assert metrics.cs_renewal_queries >= 1
        assert metrics.cs_demand_queries == demand_before  # no demand traffic

    def test_renewal_does_not_self_fund(self, mini):
        # A renewal refetch must not top up the zone's credit, or zones
        # would stay cached forever.
        config = ResilienceConfig.refresh_renew("lru", 2)
        server, engine, *_ = make_stack(mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        engine.advance_to(24 * HOUR)
        # credit 2 -> alive for ~3 h only, certainly not 24 h.
        assert server.cache.zone_ns_expiry(name("example.test."), 24 * HOUR) is None

    def test_renewal_refetch_fails_under_attack_and_zone_lapses(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.5 * HOUR, duration=10 * HOUR)
        config = ResilienceConfig.refresh_renew("lru", 5)
        server, engine, network, metrics = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        engine.advance_to(2 * HOUR)
        assert metrics.cs_renewal_failures >= 1
        assert server.cache.zone_ns_expiry(name("example.test."), 2 * HOUR) is None


class TestServeStale:
    def test_stale_answer_when_all_paths_blocked(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        # Also block the SLD itself so even direct queries fail.
        attacks.add_window(
            attack_on_zones(mini.tree, [name("example.test.")],
                            start=2 * HOUR, duration=2 * HOUR).windows()[0]
        )
        config = ResilienceConfig.stale_serving()
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("www.example.test."), RRType.A,
                                          2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.STALE_HIT

    def test_stale_irrs_reach_live_sld_during_attack(self, mini):
        # IRRs expired, root+TLD blocked, but the SLD itself is alive:
        # serve-stale uses the stale NS to go straight to the SLD.
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        config = ResilienceConfig.stale_serving()
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("mail.example.test."), RRType.A,
                                          2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.ANSWERED

    def test_vanilla_never_serves_stale(self, mini):
        attacks = attack_on_root_and_tlds(mini.tree, start=2 * HOUR,
                                          duration=2 * HOUR)
        attacks.add_window(
            attack_on_zones(mini.tree, [name("example.test.")],
                            start=2 * HOUR, duration=2 * HOUR).windows()[0]
        )
        server, *_ = make_stack(mini, ResilienceConfig.vanilla(), attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        during = server.handle_stub_query(name("www.example.test."), RRType.A,
                                          2.5 * HOUR)
        assert during.outcome is ResolutionOutcome.FAILURE


class TestGapObserver:
    def test_gap_recorded_on_relearn_after_expiry(self, mini):
        observed = []
        server, *_ = make_stack(
            mini, ResilienceConfig.vanilla(),
            gap_observer=lambda zone, gap, ttl: observed.append((zone, gap, ttl)),
        )
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # NS TTL is 1 h; revisit at 3 h -> gap of 2 h.
        server.handle_stub_query(name("mail.example.test."), RRType.A, 3 * HOUR)
        gaps = [entry for entry in observed if entry[0] == name("example.test.")]
        assert len(gaps) == 1
        _, gap, ttl = gaps[0]
        assert gap == pytest.approx(2 * HOUR)
        assert ttl == pytest.approx(HOUR)

    def test_no_gap_while_fresh(self, mini):
        observed = []
        server, *_ = make_stack(
            mini, ResilienceConfig.vanilla(),
            gap_observer=lambda zone, gap, ttl: observed.append(zone),
        )
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 60.0)
        assert name("example.test.") not in observed


class TestParentRecheck:
    def _steady_queries(self, server, metrics):
        """Query every 30 min to 2.5 h, keeping the 1 h NS TTL refreshed.

        Returns the demand-query count of the final query (at 2.5 h,
        which is past a 2 h recheck interval since the t=0 referral).
        """
        for step in range(5):
            server.handle_stub_query(
                name("www.example.test."), RRType.A, step * 0.5 * HOUR
            )
        before_last = metrics.cs_demand_queries
        server.handle_stub_query(name("mail.example.test."), RRType.A, 2.5 * HOUR)
        return metrics.cs_demand_queries - before_last

    def test_recheck_forces_referral_past_interval(self, mini):
        from dataclasses import replace
        config = replace(ResilienceConfig.refresh(),
                         parent_recheck_interval=2 * HOUR)
        server, engine, network, metrics = make_stack(mini, config)
        # Both example.test. and test. were last learned from their
        # parents at t=0, so at 2.5 h the recheck walks from the root:
        # 3 queries instead of 1.
        assert self._steady_queries(server, metrics) == 3

    def test_without_recheck_no_forced_referral(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.refresh())
        assert self._steady_queries(server, metrics) == 1
