"""Tests for the capacity-bounded cache (LRU eviction)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import DnsCache
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType

from tests.conftest import make_stack
from tests.helpers import build_mini_internet, name


def a_set(index, ttl=3600.0):
    owner = Name.from_text(f"h{index}.cap.test")
    return RRset.from_records(
        [ResourceRecord(owner, RRType.A, ttl, f"10.3.0.{index % 250}")]
    )


class TestBoundedCache:
    def test_capacity_enforced(self):
        cache = DnsCache(max_entries=5)
        for index in range(10):
            cache.put(a_set(index), Rank.AUTH_ANSWER, now=0.0)
        assert cache.total_entry_count() == 5
        assert cache.evictions == 5

    def test_lru_entry_evicted_first(self):
        cache = DnsCache(max_entries=3)
        for index in range(3):
            cache.put(a_set(index), Rank.AUTH_ANSWER, now=0.0)
        # Touch entries 0 and 1; entry 2 becomes the LRU victim.
        cache.get(Name.from_text("h0.cap.test"), RRType.A, 1.0)
        cache.get(Name.from_text("h1.cap.test"), RRType.A, 1.0)
        cache.put(a_set(99), Rank.AUTH_ANSWER, now=2.0)
        assert cache.get(Name.from_text("h2.cap.test"), RRType.A, 2.0) is None
        assert cache.get(Name.from_text("h0.cap.test"), RRType.A, 2.0) is not None

    def test_expired_tombstones_evicted_before_live_entries(self):
        cache = DnsCache(max_entries=3)
        cache.put(a_set(0, ttl=10.0), Rank.AUTH_ANSWER, now=0.0)   # dies at 10
        cache.put(a_set(1), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(2), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(3), Rank.AUTH_ANSWER, now=50.0)  # h0 is expired
        assert cache.get(Name.from_text("h1.cap.test"), RRType.A, 50.0) is not None
        assert cache.get(Name.from_text("h2.cap.test"), RRType.A, 50.0) is not None
        assert cache.entry(Name.from_text("h0.cap.test"), RRType.A) is None

    def test_update_of_existing_key_needs_no_room(self):
        cache = DnsCache(max_entries=2)
        cache.put(a_set(0), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(1), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(0), Rank.AUTH_ANSWER, now=1.0, refresh=True)
        assert cache.total_entry_count() == 2
        assert cache.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DnsCache(max_entries=0)

    def test_unbounded_never_evicts(self):
        cache = DnsCache()
        for index in range(500):
            cache.put(a_set(index), Rank.AUTH_ANSWER, now=0.0)
        assert cache.evictions == 0
        assert cache.total_entry_count() == 500

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                 max_size=120),
    )
    def test_capacity_invariant_under_any_sequence(self, capacity, indices):
        cache = DnsCache(max_entries=capacity)
        for step, index in enumerate(indices):
            cache.put(a_set(index), Rank.AUTH_ANSWER, now=float(step))
            assert cache.total_entry_count() <= capacity


class TestBoundedCacheEndToEnd:
    def test_resolver_survives_tiny_cache(self):
        mini = build_mini_internet()
        config = replace(ResilienceConfig.refresh(), cache_capacity=8)
        server, engine, network, metrics = make_stack(mini, config)
        names = ["www.example.test.", "www.hosted.test.", "www.provider.test.",
                 "www.dept.example.test."]
        for step in range(20):
            result = server.handle_stub_query(
                name(names[step % 4]), RRType.A, float(step)
            )
            assert not result.failed
        assert server.cache.total_entry_count() <= 8
        assert server.cache.evictions > 0

    def test_eviction_degrades_but_does_not_break_renewal(self):
        mini = build_mini_internet()
        config = replace(ResilienceConfig.refresh_renew("lru", 3),
                         cache_capacity=4)
        server, engine, *_ = make_stack(mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # Churn the cache so the zone's IRRs get evicted, then let the
        # renewal timer fire on the missing entry: must not blow up.
        for step in range(10):
            server.handle_stub_query(name("www.hosted.test."), RRType.A,
                                     1.0 + step)
            server.handle_stub_query(name("www.provider.test."), RRType.A,
                                     20.0 + step)
        engine.advance_to(2 * 3600.0)
        result = server.handle_stub_query(name("www.example.test."), RRType.A,
                                          2 * 3600.0 + 1)
        assert not result.failed
