"""Tests for the caching server's DNSSEC validation mode (§6 extension)."""

import pytest

from repro.core.caching_server import ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.dnssec import sign_irrs
from repro.dns.rrtypes import RRType
from repro.simulation.attack import attack_on_root_and_tlds

from tests.conftest import make_stack
from tests.helpers import HOUR, build_mini_internet, name


@pytest.fixture
def signed_mini():
    """The mini internet with test., example.test. and the root signed."""
    mini = build_mini_internet()
    for zone_name in (".", "test.", "example.test."):
        zone = mini.tree.zone(name(zone_name))
        zone.replace_infrastructure_records(
            sign_irrs(zone.infrastructure_records)
        )
    # Parent-side copies must carry the child's DNSSEC sets too.
    root = mini.tree.zone(name("."))
    root.replace_delegation(
        mini.tree.zone(name("test.")).infrastructure_records
    )
    tld = mini.tree.zone(name("test."))
    tld.replace_delegation(
        mini.tree.zone(name("example.test.")).infrastructure_records
    )
    return mini


class TestValidationHappyPath:
    def test_signed_lookup_validates(self, signed_mini):
        config = ResilienceConfig.refresh().with_validation()
        server, *_ = make_stack(signed_mini, config)
        result = server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.ANSWERED

    def test_keys_cached_alongside_answers(self, signed_mini):
        config = ResilienceConfig.refresh().with_validation()
        server, *_ = make_stack(signed_mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        assert server.cache.get(name("example.test."), RRType.DNSKEY, 0.0)
        assert server.cache.get(name("test."), RRType.DNSKEY, 0.0)

    def test_unsigned_namespace_unaffected(self, signed_mini):
        config = ResilienceConfig.vanilla().with_validation()
        server, *_ = make_stack(signed_mini, config)
        # provider.test. is unsigned; only test. (signed) is on its chain.
        result = server.handle_stub_query(name("www.provider.test."), RRType.A, 0.0)
        assert not result.failed

    def test_dnskey_query_answerable(self, signed_mini):
        server, *_ = make_stack(signed_mini, ResilienceConfig.vanilla())
        result = server.handle_stub_query(name("example.test."), RRType.DNSKEY, 0.0)
        assert result.outcome is ResolutionOutcome.ANSWERED
        assert result.answer.rrtype is RRType.DNSKEY


class TestValidationUnderAttack:
    def _steady_www(self, server, until_hours=49.0):
        """Query www every 30 min so the SLD IRRs stay refreshed.

        The test. DNSKEY (2-day TTL, learned at t=0) dies at 48 h, right
        as the attack starts — so it can never be refetched.
        """
        for step in range(int(until_hours * 2)):
            server.handle_stub_query(
                name("www.example.test."), RRType.A, step * 0.5 * HOUR
            )

    def test_expired_tld_key_breaks_validation_during_attack(self, signed_mini):
        attacks = attack_on_root_and_tlds(
            signed_mini.tree, start=48 * HOUR, duration=6 * HOUR
        )
        config = ResilienceConfig.refresh().with_validation()
        server, *_ = make_stack(signed_mini, config, attacks=attacks)
        self._steady_www(server)
        during = server.handle_stub_query(
            name("mail.example.test."), RRType.A, 49 * HOUR
        )
        assert during.outcome is ResolutionOutcome.VALIDATION_FAILURE

    def test_without_validation_same_scenario_succeeds(self, signed_mini):
        attacks = attack_on_root_and_tlds(
            signed_mini.tree, start=48 * HOUR, duration=6 * HOUR
        )
        server, *_ = make_stack(signed_mini, ResilienceConfig.refresh(),
                                attacks=attacks)
        self._steady_www(server)
        during = server.handle_stub_query(
            name("mail.example.test."), RRType.A, 49 * HOUR
        )
        assert during.outcome is ResolutionOutcome.ANSWERED

    def test_validation_failures_counted(self, signed_mini):
        attacks = attack_on_root_and_tlds(
            signed_mini.tree, start=48 * HOUR, duration=6 * HOUR
        )
        config = ResilienceConfig.refresh().with_validation()
        server, engine, network, metrics = make_stack(
            signed_mini, config, attacks=attacks
        )
        self._steady_www(server)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 49 * HOUR)
        assert metrics.sr_validation_failures >= 1
        assert metrics.sr_failures >= metrics.sr_validation_failures

    def test_missing_key_refetched_when_zone_reachable(self, signed_mini):
        # No attack: even if the TLD key expired, validation refetches it.
        config = ResilienceConfig.vanilla().with_validation()
        server, *_ = make_stack(signed_mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # 72 h later everything expired; the lookup revalidates from scratch.
        result = server.handle_stub_query(
            name("mail.example.test."), RRType.A, 72 * HOUR
        )
        assert result.outcome is ResolutionOutcome.ANSWERED


class TestConfigSurface:
    def test_with_validation_labels(self):
        config = ResilienceConfig.combination().with_validation()
        assert config.dnssec_validation
        assert config.label.endswith("+dnssec")

    def test_outcome_failed_property(self):
        assert ResolutionOutcome.VALIDATION_FAILURE.failed
        assert not ResolutionOutcome.ANSWERED.failed
