"""Tests for the FetchBudget work-limit primitive."""

import pytest

from repro.core.budget import FetchBudget


class TestFetchBudget:
    @pytest.mark.parametrize("limit", [0, -3])
    def test_nonpositive_limit_rejected(self, limit):
        with pytest.raises(ValueError):
            FetchBudget(limit)

    def test_spend_until_exhausted(self):
        budget = FetchBudget(2)
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()
        assert budget.exhaustions == 1
        assert budget.remaining == 0

    def test_release_returns_one_unit(self):
        budget = FetchBudget(1)
        assert budget.spend()
        assert not budget.spend()
        budget.release()
        assert budget.spend()
        assert budget.exhaustions == 1

    def test_release_never_goes_negative(self):
        budget = FetchBudget(2)
        budget.release()
        assert budget.used == 0
        assert budget.remaining == 2

    def test_reset_returns_the_whole_budget(self):
        budget = FetchBudget(3)
        for _ in range(3):
            assert budget.spend()
        assert not budget.spend()
        budget.reset()
        assert budget.remaining == 3
        assert budget.spend()
        # Exhaustion history survives the reset (it is the metric).
        assert budget.exhaustions == 1
