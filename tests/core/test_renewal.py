"""Tests for the renewal manager (timers + credits + refetch)."""

import pytest

from repro.core.cache import DnsCache
from repro.core.policies import LRUPolicy
from repro.core.renewal import RENEWAL_LEAD, RenewalManager
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.simulation.engine import SimulationEngine

ZONE = Name.from_text("ucla.edu")


def ns_set(ttl=100.0):
    return RRset.from_records(
        [ResourceRecord(ZONE, RRType.NS, ttl, Name.from_text("ns1.ucla.edu"))]
    )


class Harness:
    """A renewal manager wired to a scriptable refetch."""

    def __init__(self, credit=2, refetch_succeeds=True):
        self.engine = SimulationEngine()
        self.cache = DnsCache()
        self.policy = LRUPolicy(credit=credit)
        self.refetch_calls = []
        self.refetch_succeeds = refetch_succeeds
        self.manager = RenewalManager(
            policy=self.policy,
            clock=self.engine,
            cache=self.cache,
            refetch=self._refetch,
        )

    def _refetch(self, zone, now):
        self.refetch_calls.append((zone, now))
        if self.refetch_succeeds:
            # Simulate the ingest path: re-store the NS set, restarting
            # the countdown, and notify the manager.
            result = self.cache.put(ns_set(ttl=100.0), Rank.AUTH_ANSWER, now,
                                    refresh=True)
            self.manager.note_irrs_cached(ZONE, result.expires_at)
            return True
        return False

    def cache_irrs(self, now=0.0, ttl=100.0):
        result = self.cache.put(ns_set(ttl=ttl), Rank.AUTH_AUTHORITY, now)
        self.manager.note_irrs_cached(ZONE, result.expires_at)
        return result.expires_at


class TestRenewalTimers:
    def test_refetch_fires_just_before_expiry(self):
        h = Harness(credit=1)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.engine.advance_to(100.0 - RENEWAL_LEAD - 0.001)
        assert h.refetch_calls == []
        h.engine.advance_to(100.0)
        assert len(h.refetch_calls) == 1
        assert h.refetch_calls[0][1] == pytest.approx(100.0 - RENEWAL_LEAD)

    def test_credit_limits_renewal_count(self):
        h = Harness(credit=2)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.engine.advance_to(1000.0)
        # 2 credits -> 2 refetches, then the records lapse.
        assert len(h.refetch_calls) == 2
        assert h.manager.lapses >= 1
        assert h.cache.zone_ns_expiry(ZONE, 1000.0) is None

    def test_no_credit_means_no_refetch(self):
        h = Harness(credit=2)
        h.cache_irrs(now=0.0, ttl=100.0)
        # No on_zone_use -> no credit.
        h.engine.advance_to(500.0)
        assert h.refetch_calls == []
        assert h.manager.lapses == 1

    def test_failed_refetch_lets_records_lapse(self):
        h = Harness(credit=5, refetch_succeeds=False)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.engine.advance_to(500.0)
        assert len(h.refetch_calls) == 1  # one attempt, then lapse
        assert h.manager.renewals_succeeded == 0
        assert h.cache.zone_ns_expiry(ZONE, 500.0) is None

    def test_refreshed_entry_rearms_without_spending_credit(self):
        h = Harness(credit=1)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        # At t=50 a demand response refreshes the IRRs to expire at 150.
        result = h.cache.put(ns_set(ttl=100.0), Rank.AUTH_ANSWER, 50.0,
                             refresh=True)
        h.manager.note_irrs_cached(ZONE, result.expires_at)
        h.engine.advance_to(120.0)
        assert h.refetch_calls == []  # old timer noticed the refresh
        assert h.policy.credit_of(ZONE) == 1  # credit untouched
        h.engine.advance_to(200.0)
        assert len(h.refetch_calls) == 1  # renewal happened at ~150

    def test_rearm_with_same_expiry_is_noop(self):
        h = Harness(credit=1)
        expiry = h.cache_irrs(now=0.0, ttl=100.0)
        before = h.engine.pending_events()
        h.manager.note_irrs_cached(ZONE, expiry)
        assert h.engine.pending_events() == before

    def test_forget_zone_cancels_timer(self):
        h = Harness(credit=3)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.manager.forget_zone(ZONE)
        h.engine.advance_to(500.0)
        assert h.refetch_calls == []
        assert h.policy.credit_of(ZONE) == 0

    def test_timer_on_evicted_zone_lapses_quietly(self):
        h = Harness(credit=3)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.cache.remove(ZONE, RRType.NS)
        h.engine.advance_to(500.0)
        assert h.refetch_calls == []

    def test_armed_timer_count(self):
        h = Harness()
        assert h.manager.armed_timer_count() == 0
        h.cache_irrs()
        assert h.manager.armed_timer_count() == 1

    def test_successful_renewals_keep_zone_alive(self):
        h = Harness(credit=3)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.engine.advance_to(250.0)
        # After two renewals (at ~99 and ~198) the IRRs are still live.
        assert h.cache.zone_ns_expiry(ZONE, 250.0) is not None
        assert h.manager.renewals_succeeded == 2


class TestRenewalAccounting:
    def test_eviction_is_not_counted_as_lapse(self):
        h = Harness(credit=3)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.cache.remove(ZONE, RRType.NS)
        h.engine.advance_to(500.0)
        assert h.manager.lapses == 0  # nothing expired *under renewal*
        assert h.policy.credit_of(ZONE) == 0  # state still cleaned up

    def test_failed_refetch_lands_in_renewals_failed(self):
        h = Harness(credit=5, refetch_succeeds=False)
        h.cache_irrs(now=0.0, ttl=100.0)
        h.policy.on_zone_use(ZONE, 100.0, 0.0)
        h.engine.advance_to(500.0)
        assert h.manager.renewals_attempted == 1
        assert h.manager.renewals_failed == 1
        assert h.manager.renewals_attempted == (
            h.manager.renewals_succeeded + h.manager.renewals_failed
        )

    def test_armed_zones_lists_pending_timers(self):
        h = Harness()
        assert h.manager.armed_zones() == ()
        h.cache_irrs()
        assert h.manager.armed_zones() == (ZONE,)


class TestSilentDropRegression:
    """A "successful" refetch that leaves the cached expiry inside the
    renewal lead must rearm immediately (spending further credit) and
    eventually lapse — never strand the zone timerless with credit."""

    @staticmethod
    def _rig(credit, refetch):
        engine = SimulationEngine()
        cache = DnsCache()
        policy = LRUPolicy(credit=credit)
        manager = RenewalManager(
            policy=policy, clock=engine, cache=cache, refetch=refetch
        )
        return engine, cache, policy, manager

    def test_refetch_inside_lead_keeps_renewing_until_broke(self):
        calls = []
        state = {}

        def refetch(zone, now):
            calls.append(now)
            # Same rank + same data + no refresh: the put is rejected and
            # the countdown is NOT restarted, so the server-side ingest
            # hook never re-arms the timer for us.
            state["cache"].put(ns_set(ttl=100.0), Rank.AUTH_AUTHORITY, now)
            return True

        engine, cache, policy, manager = self._rig(2, refetch)
        state["cache"] = cache
        result = cache.put(ns_set(ttl=100.0), Rank.AUTH_AUTHORITY, 0.0)
        manager.note_irrs_cached(ZONE, result.expires_at)
        policy.on_zone_use(ZONE, 100.0, 0.0)
        engine.run()
        # Both credits go on (futile) renewals at ~99, then a clean lapse.
        assert len(calls) == 2
        assert manager.lapses == 1
        assert policy.credit_of(ZONE) == 0
        assert manager.renewals_attempted == 2
        assert manager.renewals_succeeded == 2
        assert manager.armed_zones() == ()

    def test_refetch_that_stores_nothing_live_counts_a_lapse(self):
        state = {}

        def refetch(zone, now):
            # "Success" whose payload is already dead on arrival.
            state["cache"].put(ns_set(ttl=0.0), Rank.AUTH_AUTHORITY, now,
                               refresh=True)
            return True

        engine, cache, policy, manager = self._rig(3, refetch)
        state["cache"] = cache
        result = cache.put(ns_set(ttl=100.0), Rank.AUTH_AUTHORITY, 0.0)
        manager.note_irrs_cached(ZONE, result.expires_at)
        policy.on_zone_use(ZONE, 100.0, 0.0)
        engine.run()
        assert manager.lapses == 1
        assert policy.credit_of(ZONE) == 0  # no orphaned credit
        assert manager.renewals_attempted == 1
        assert manager.renewals_succeeded == 1
        assert cache.zone_ns_expiry(ZONE, engine.now) is None
