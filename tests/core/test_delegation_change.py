"""Tests for resolver recovery when a zone's servers change (IRR reset).

Paper §4: "In the worst case, all servers in the old IRR fail to respond
and the parent zone must be queried to reset the IRR."
"""

import pytest

from repro.core.caching_server import ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.rrtypes import RRType
from repro.hierarchy.churn import fresh_server_set

from tests.conftest import make_stack
from tests.helpers import HOUR, build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


def migrate_example(mini, decommission=True):
    zone_name = name("example.test.")
    irrs, servers = fresh_server_set(zone_name, ttl=HOUR, count=2, generation=1)
    mini.tree.migrate_zone_servers(zone_name, irrs, servers,
                                   decommission_old=decommission)
    return irrs


class TestIrrReset:
    def test_recovers_via_parent_after_decommission(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        migrate_example(mini, decommission=True)
        # Cached (now obsolete) NS is still live at t=600; the resolver
        # must fail over to the parent and reset the IRR.
        result = server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        assert result.outcome is ResolutionOutcome.ANSWERED

    def test_recovers_when_old_servers_are_lame(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        migrate_example(mini, decommission=False)
        result = server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        assert result.outcome is ResolutionOutcome.ANSWERED

    def test_cache_holds_new_irrs_after_reset(self, mini):
        server, *_ = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        new_irrs = migrate_example(mini)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        cached = server.cache.get(name("example.test."), RRType.NS, 600.0)
        assert cached is not None
        assert set(r.data for r in cached) == set(new_irrs.server_names())

    def test_second_lookup_goes_direct_to_new_servers(self, mini):
        server, engine, network, metrics = make_stack(mini, ResilienceConfig.vanilla())
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        migrate_example(mini)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        before = metrics.cs_demand_queries
        result = server.handle_stub_query(name("www.example.test."), RRType.A, 700.0)
        assert result.outcome is ResolutionOutcome.ANSWERED
        assert metrics.cs_demand_queries == before + 1  # direct, no walk

    def test_renewal_state_dropped_on_reset(self, mini):
        config = ResilienceConfig.refresh_renew("lru", 5)
        server, engine, *_ = make_stack(mini, config)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        migrate_example(mini)
        server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        # The zone's renewal credit was forgotten and re-earned fresh;
        # timers now track the new IRR set, which must keep working.
        engine.advance_to(2 * HOUR)
        result = server.handle_stub_query(name("www.example.test."), RRType.A,
                                          2 * HOUR + 10)
        assert not result.failed

    def test_reset_attempted_only_once_per_fetch(self, mini):
        # If the fresh delegation is just as dead (attack), fail cleanly.
        from repro.simulation.attack import attack_on_zones
        server_stack_mini = mini
        attacks = attack_on_zones(
            server_stack_mini.tree, [name("example.test.")],
            start=500.0, duration=10 * HOUR,
        )
        server, engine, network, metrics = make_stack(
            mini, ResilienceConfig.vanilla(), attacks=attacks
        )
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        result = server.handle_stub_query(name("mail.example.test."), RRType.A, 600.0)
        assert result.outcome is ResolutionOutcome.FAILURE
        # Bounded work: the walk terminated (no referral loop).
        assert metrics.cs_demand_queries < 20
