"""Tests for scheme-string parsing (``parse_scheme``) and its new families.

Regression coverage for the parameter-validation bug: ``parse_scheme``
used to accept non-finite and negative parameters (``long-ttl:nan``,
``long-ttl:inf``, ``a-lfu:-3``) and hand them straight to the config,
where they silently corrupted TTL math downstream.  Every rejection
must name the offending parameter so the CLI error is actionable.
"""

import pickle

import pytest

from repro.core.config import DAY, ResilienceConfig
from repro.core.schemes import parse_scheme, scheme_syntax


class TestParameterValidation:
    @pytest.mark.parametrize("bad", [
        "long-ttl:nan", "long-ttl:inf", "long-ttl:-inf", "long-ttl:-2",
        "long-ttl:0",
        "swr:nan", "swr:inf", "swr:-600", "swr:0",
        "decoupled:nan", "decoupled:inf", "decoupled:-1", "decoupled:0",
        "a-lfu:nan", "a-lfu:inf", "a-lfu:-3",
        "lru:nan", "a-lru:-1",
    ])
    def test_rejects_non_finite_and_non_positive(self, bad):
        with pytest.raises(ValueError) as excinfo:
            parse_scheme(bad)
        # The error must name the offending parameter value.
        parameter = bad.split(":", 1)[1]
        assert parameter in str(excinfo.value)

    def test_policy_credit_zero_still_allowed(self):
        # Credit 0 is a legitimate degenerate policy (never renew);
        # only the TTL/grace families require strictly positive values.
        policy = parse_scheme("a-lfu:0").make_renewal_policy()
        assert policy.credit == 0


class TestNewFamilies:
    def test_swr_default_grace(self):
        config = parse_scheme("swr")
        assert config.swr_grace == 3600.0
        assert config.ttl_refresh
        assert config.label == "swr3600s"

    def test_swr_explicit_grace(self):
        assert parse_scheme("swr:600").swr_grace == 600.0

    def test_decoupled_default_days(self):
        config = parse_scheme("decoupled")
        assert config.long_ttl == 7 * DAY
        assert config.update_channel
        assert config.label == "decoupled7d"

    def test_decoupled_explicit_days(self):
        config = parse_scheme("decoupled:3")
        assert config.long_ttl == 3 * DAY
        assert config.update_channel

    def test_syntax_lists_new_families(self):
        text = scheme_syntax()
        assert "swr" in text and "decoupled" in text

    def test_new_configs_pickle_round_trip(self):
        # Parallel sweeps ship configs across the worker pool boundary.
        for spelling in ("swr:900", "decoupled:7"):
            config = parse_scheme(spelling)
            clone = pickle.loads(pickle.dumps(config))
            assert clone == config


class TestFactories:
    def test_swr_factory_rejects_non_positive_grace(self):
        with pytest.raises(ValueError):
            ResilienceConfig.swr(0.0)
        with pytest.raises(ValueError):
            ResilienceConfig.swr(-1.0)

    def test_decoupled_factory_rejects_non_positive_days(self):
        with pytest.raises(ValueError):
            ResilienceConfig.decoupled(0.0)

    def test_describe_mentions_new_mechanisms(self):
        assert "swr(3600s)" in ResilienceConfig.swr().describe()
        assert "update-channel" in ResilienceConfig.decoupled().describe()
