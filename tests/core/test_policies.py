"""Unit + property tests for the renewal credit policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    AdaptiveLFUPolicy,
    AdaptiveLRUPolicy,
    LFUPolicy,
    LRUPolicy,
    make_policy,
    policy_names,
)
from repro.dns.name import Name

DAY = 86400.0
ZONE = Name.from_text("ucla.edu")
OTHER = Name.from_text("mit.edu")


class TestLRU:
    def test_use_resets_credit(self):
        policy = LRUPolicy(credit=3)
        policy.on_zone_use(ZONE, irr_ttl=3600, now=0.0)
        assert policy.credit_of(ZONE) == 3
        policy.take_renewal_credit(ZONE)
        policy.take_renewal_credit(ZONE)
        assert policy.credit_of(ZONE) == 1
        policy.on_zone_use(ZONE, irr_ttl=3600, now=10.0)
        assert policy.credit_of(ZONE) == 3  # reset, not accumulate

    def test_credit_exhaustion(self):
        policy = LRUPolicy(credit=2)
        policy.on_zone_use(ZONE, 3600, 0.0)
        assert policy.take_renewal_credit(ZONE)
        assert policy.take_renewal_credit(ZONE)
        assert not policy.take_renewal_credit(ZONE)

    def test_unknown_zone_has_no_credit(self):
        assert not LRUPolicy(3).take_renewal_credit(ZONE)

    def test_negative_credit_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(credit=-1)


class TestLFU:
    def test_credit_accumulates(self):
        policy = LFUPolicy(credit=3, max_credit=100)
        for _ in range(4):
            policy.on_zone_use(ZONE, 3600, 0.0)
        assert policy.credit_of(ZONE) == 12

    def test_cap_enforced(self):
        policy = LFUPolicy(credit=3, max_credit=7)
        for _ in range(10):
            policy.on_zone_use(ZONE, 3600, 0.0)
        assert policy.credit_of(ZONE) == 7

    def test_default_cap_is_ten_times_credit(self):
        policy = LFUPolicy(credit=5)
        assert policy.max_credit == 50

    def test_cap_below_credit_rejected(self):
        with pytest.raises(ValueError):
            LFUPolicy(credit=5, max_credit=2)


class TestAdaptive:
    def test_alru_credit_scales_inversely_with_ttl(self):
        policy = AdaptiveLRUPolicy(credit=3)
        policy.on_zone_use(ZONE, irr_ttl=DAY, now=0.0)
        assert policy.credit_of(ZONE) == pytest.approx(3.0)
        policy.on_zone_use(OTHER, irr_ttl=DAY / 2, now=0.0)
        assert policy.credit_of(OTHER) == pytest.approx(6.0)

    def test_alru_extra_cache_time_is_ttl_independent(self):
        # credit * ttl == C days for every zone: the adaptive property.
        policy = AdaptiveLRUPolicy(credit=3)
        for ttl in (300.0, 3600.0, DAY):
            policy.on_zone_use(ZONE, irr_ttl=ttl, now=0.0)
            assert policy.credit_of(ZONE) * ttl == pytest.approx(3 * DAY)

    def test_alfu_accumulates_scaled_credit_with_cap(self):
        policy = AdaptiveLFUPolicy(credit=3, max_credit=10)
        policy.on_zone_use(ZONE, irr_ttl=DAY, now=0.0)
        policy.on_zone_use(ZONE, irr_ttl=DAY, now=1.0)
        assert policy.credit_of(ZONE) == pytest.approx(6.0)
        for _ in range(10):
            policy.on_zone_use(ZONE, irr_ttl=DAY, now=2.0)
        assert policy.credit_of(ZONE) == 10

    def test_non_positive_ttl_rejected(self):
        policy = AdaptiveLRUPolicy(credit=3)
        with pytest.raises(ValueError):
            policy.on_zone_use(ZONE, irr_ttl=0.0, now=0.0)

    def test_fractional_credit_buys_whole_renewals_only(self):
        policy = AdaptiveLRUPolicy(credit=1)
        policy.on_zone_use(ZONE, irr_ttl=2 * DAY, now=0.0)  # credit 0.5
        assert not policy.take_renewal_credit(ZONE)
        policy = AdaptiveLRUPolicy(credit=3)
        policy.on_zone_use(ZONE, irr_ttl=2 * DAY, now=0.0)  # credit 1.5
        assert policy.take_renewal_credit(ZONE)
        assert not policy.take_renewal_credit(ZONE)  # 0.5 left


class TestLifecycle:
    def test_forget_drops_state(self):
        policy = LFUPolicy(credit=3)
        policy.on_zone_use(ZONE, 3600, 0.0)
        policy.forget(ZONE)
        assert policy.credit_of(ZONE) == 0
        assert policy.tracked_zones() == 0

    def test_tracked_zones(self):
        policy = LRUPolicy(3)
        policy.on_zone_use(ZONE, 3600, 0.0)
        policy.on_zone_use(OTHER, 3600, 0.0)
        assert policy.tracked_zones() == 2


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("lru", LRUPolicy), ("lfu", LFUPolicy),
        ("a-lru", AdaptiveLRUPolicy), ("a-lfu", AdaptiveLFUPolicy),
        ("A-LFU", AdaptiveLFUPolicy),  # case-insensitive
    ])
    def test_make_policy(self, kind, cls):
        assert isinstance(make_policy(kind, 3), cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("mru", 3)

    def test_policy_names_listed(self):
        assert set(policy_names()) == {"lru", "lfu", "a-lru", "a-lfu"}


class TestPolicyProperties:
    @given(
        st.sampled_from(list(policy_names())),
        st.floats(min_value=0.5, max_value=10, allow_nan=False),
        st.lists(st.sampled_from(["use", "take"]), min_size=1, max_size=50),
    )
    def test_credit_never_negative_and_spends_are_funded(self, kind, credit, ops):
        policy = make_policy(kind, credit)
        taken = 0
        for op in ops:
            if op == "use":
                policy.on_zone_use(ZONE, irr_ttl=3600.0, now=0.0)
            else:
                if policy.take_renewal_credit(ZONE):
                    taken += 1
            assert policy.credit_of(ZONE) >= 0.0
        # Every successful take consumed exactly one credit; total granted
        # is bounded by uses * per-use grant (pre-cap).
        uses = ops.count("use")
        per_use = credit * (86400.0 / 3600.0 if kind.startswith("a-") else 1.0)
        assert taken <= uses * per_use

    @given(st.floats(min_value=60, max_value=7 * 86400, allow_nan=False))
    def test_adaptive_lifetime_extension_constant(self, ttl):
        policy = AdaptiveLRUPolicy(credit=2)
        policy.on_zone_use(ZONE, irr_ttl=ttl, now=0.0)
        extension = policy.credit_of(ZONE) * ttl
        assert extension == pytest.approx(2 * 86400.0)
