"""Unit + property tests for the ranked TTL cache."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import DnsCache, split_key
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType


def a_set(owner="www.x.test", ttl=300.0, address="10.0.0.1"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(owner), RRType.A, ttl, address)]
    )


def ns_set(zone="x.test", ttl=3600.0, server="ns1.x.test"):
    return RRset.from_records(
        [ResourceRecord(Name.from_text(zone), RRType.NS, ttl,
                        Name.from_text(server))]
    )


class TestBasicLifecycle:
    def test_put_get(self):
        cache = DnsCache()
        cache.put(a_set(), Rank.AUTH_ANSWER, now=0.0)
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 100.0) is not None

    def test_expiry(self):
        cache = DnsCache()
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=0.0)
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 299.9) is not None
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 300.0) is None

    def test_stale_still_readable(self):
        cache = DnsCache()
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=0.0)
        assert cache.get_stale(Name.from_text("www.x.test"), RRType.A, 999.0) is not None

    def test_expires_at(self):
        cache = DnsCache()
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=10.0)
        assert cache.expires_at(Name.from_text("www.x.test"), RRType.A, 20.0) == 310.0
        assert cache.expires_at(Name.from_text("www.x.test"), RRType.A, 400.0) is None

    def test_remove(self):
        cache = DnsCache()
        cache.put(a_set(), Rank.AUTH_ANSWER, now=0.0)
        assert cache.remove(Name.from_text("www.x.test"), RRType.A)
        assert not cache.remove(Name.from_text("www.x.test"), RRType.A)
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 0.0) is None

    def test_max_effective_ttl_caps_lifetime(self):
        cache = DnsCache(max_effective_ttl=100.0)
        cache.put(a_set(ttl=10_000), Rank.AUTH_ANSWER, now=0.0)
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 99.0) is not None
        assert cache.get(Name.from_text("www.x.test"), RRType.A, 101.0) is None
        # published_ttl preserves the original value for gap analysis
        entry = cache.entry(Name.from_text("www.x.test"), RRType.A)
        assert entry.published_ttl == 10_000


class TestRanking:
    def test_higher_rank_replaces(self):
        cache = DnsCache()
        cache.put(a_set(address="10.0.0.1"), Rank.ADDITIONAL, now=0.0)
        result = cache.put(a_set(address="10.0.0.2"), Rank.AUTH_ANSWER, now=0.0)
        assert result.stored
        cached = cache.get(Name.from_text("www.x.test"), RRType.A, 1.0)
        assert cached.data_values() == ("10.0.0.2",)

    def test_lower_rank_ignored(self):
        cache = DnsCache()
        cache.put(a_set(address="10.0.0.1"), Rank.AUTH_ANSWER, now=0.0)
        result = cache.put(a_set(address="10.0.0.2"), Rank.ADDITIONAL, now=0.0)
        assert not result.stored
        cached = cache.get(Name.from_text("www.x.test"), RRType.A, 1.0)
        assert cached.data_values() == ("10.0.0.1",)

    def test_lower_rank_accepted_after_expiry(self):
        cache = DnsCache()
        cache.put(a_set(ttl=10, address="10.0.0.1"), Rank.AUTH_ANSWER, now=0.0)
        result = cache.put(a_set(address="10.0.0.2"), Rank.ADDITIONAL, now=20.0)
        assert result.stored
        assert result.replaced_expired
        assert result.previous_expiry == 10.0

    def test_child_irrs_replace_parent_copy(self):
        # The exact RFC 2181 scenario from the paper.
        cache = DnsCache()
        cache.put(ns_set(ttl=100), Rank.NON_AUTH_AUTHORITY, now=0.0)
        result = cache.put(ns_set(ttl=3600), Rank.AUTH_AUTHORITY, now=0.0)
        assert result.stored
        assert cache.expires_at(Name.from_text("x.test"), RRType.NS, 0.0) == 3600.0


class TestRefreshSemantics:
    def test_vanilla_same_data_does_not_restart_ttl(self):
        cache = DnsCache()
        cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        result = cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=50.0)
        assert not result.stored
        assert cache.expires_at(Name.from_text("x.test"), RRType.NS, 50.0) == 100.0

    def test_refresh_restarts_ttl(self):
        cache = DnsCache()
        cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        result = cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=50.0,
                           refresh=True)
        assert result.stored
        assert result.refreshed
        assert cache.expires_at(Name.from_text("x.test"), RRType.NS, 50.0) == 150.0

    def test_changed_data_replaces_even_without_refresh(self):
        cache = DnsCache()
        cache.put(ns_set(server="ns1.x.test", ttl=100), Rank.AUTH_AUTHORITY, 0.0)
        result = cache.put(ns_set(server="ns2.x.test", ttl=100),
                           Rank.AUTH_AUTHORITY, 50.0)
        assert result.stored
        assert not result.refreshed
        cached = cache.get(Name.from_text("x.test"), RRType.NS, 60.0)
        assert str(cached.records[0].data) == "ns2.x.test."


class TestNegativeCache:
    def test_negative_roundtrip(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("ghost.x.test"), RRType.A, 0.0, 300.0)
        assert cache.get_negative(Name.from_text("ghost.x.test"), RRType.A, 299.0)
        assert not cache.get_negative(Name.from_text("ghost.x.test"), RRType.A, 301.0)

    def test_negative_is_per_type(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("a.x.test"), RRType.MX, 0.0, 300.0)
        assert not cache.get_negative(Name.from_text("a.x.test"), RRType.A, 10.0)


class TestZoneViews:
    def test_zone_ns_expiry(self):
        cache = DnsCache()
        cache.put(ns_set(ttl=500), Rank.AUTH_AUTHORITY, now=0.0)
        assert cache.zone_ns_expiry(Name.from_text("x.test"), 10.0) == 500.0
        assert cache.zone_ns_expiry(Name.from_text("x.test"), 600.0) is None

    def test_best_zone_prefers_deepest(self):
        cache = DnsCache()
        cache.put(ns_set(zone="test", server="ns1.test"), Rank.AUTH_AUTHORITY, 0.0)
        cache.put(ns_set(zone="x.test", server="ns1.x.test"), Rank.AUTH_AUTHORITY, 0.0)
        best = cache.best_zone_for(Name.from_text("www.x.test"), 10.0)
        assert best == Name.from_text("x.test")

    def test_best_zone_skips_expired(self):
        cache = DnsCache()
        cache.put(ns_set(zone="test", server="ns1.test", ttl=9999),
                  Rank.AUTH_AUTHORITY, 0.0)
        cache.put(ns_set(zone="x.test", server="ns1.x.test", ttl=10),
                  Rank.AUTH_AUTHORITY, 0.0)
        best = cache.best_zone_for(Name.from_text("www.x.test"), 100.0)
        assert best == Name.from_text("test")

    def test_best_zone_allows_stale_when_asked(self):
        cache = DnsCache()
        cache.put(ns_set(zone="x.test", server="ns1.x.test", ttl=10),
                  Rank.AUTH_AUTHORITY, 0.0)
        assert cache.best_zone_for(Name.from_text("www.x.test"), 100.0) is None
        stale = cache.best_zone_for(Name.from_text("www.x.test"), 100.0,
                                    allow_stale=True)
        assert stale == Name.from_text("x.test")

    def test_best_zone_respects_exclusion(self):
        cache = DnsCache()
        cache.put(ns_set(zone="x.test", server="ns1.x.test"), Rank.AUTH_AUTHORITY, 0.0)
        best = cache.best_zone_for(
            Name.from_text("www.x.test"), 1.0,
            exclude={Name.from_text("x.test")},
        )
        assert best is None

    def test_best_zone_returns_none_for_root_only(self):
        cache = DnsCache()
        assert cache.best_zone_for(Name.from_text("a.b.c"), 0.0) is None


class TestOccupancy:
    def test_live_counts(self):
        cache = DnsCache()
        cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        cache.put(a_set(ttl=10), Rank.AUTH_ANSWER, now=0.0)
        assert cache.live_entry_count(5.0) == 2
        assert cache.live_entry_count(50.0) == 1
        assert cache.live_zone_count(5.0) == 1
        assert cache.live_record_count(5.0) == 2

    def test_purge_expired(self):
        cache = DnsCache()
        cache.put(a_set(ttl=10), Rank.AUTH_ANSWER, now=0.0)
        cache.put(ns_set(ttl=1000), Rank.AUTH_AUTHORITY, now=0.0)
        removed = cache.purge_expired(now=500.0)
        assert removed == 1
        assert cache.total_entry_count() == 1


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000, allow_nan=False),  # put time
                st.floats(min_value=1, max_value=1000, allow_nan=False),  # ttl
                st.sampled_from(list(Rank)),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_entry_never_live_beyond_its_ttl(self, puts):
        cache = DnsCache()
        owner = Name.from_text("p.x.test")
        last_time = 0.0
        for put_time, ttl, rank in sorted(puts, key=lambda item: item[0]):
            cache.put(a_set(owner="p.x.test", ttl=ttl), rank, now=put_time)
            last_time = put_time
            entry = cache.entry(owner, RRType.A)
            # Invariant: whatever happened, the live window never exceeds
            # the stored rrset's TTL from its storage time.
            assert entry.expires_at <= entry.stored_at + entry.rrset.ttl + 1e-9
        # And a get far in the future is always a miss.
        assert cache.get(owner, RRType.A, last_time + 2000.0) is None

    @given(st.floats(min_value=1, max_value=10_000, allow_nan=False))
    def test_get_respects_exact_expiry(self, ttl):
        cache = DnsCache()
        cache.put(a_set(ttl=ttl), Rank.AUTH_ANSWER, now=0.0)
        owner = Name.from_text("www.x.test")
        assert cache.get(owner, RRType.A, ttl * 0.999) is not None
        assert cache.get(owner, RRType.A, ttl) is None


class TestServeStaleBound:
    """get_stale's optional max_stale bound (bounded serve-stale)."""

    def setup_method(self):
        self.cache = DnsCache()
        self.cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=0.0)
        self.owner = Name.from_text("www.x.test")

    def test_unbounded_by_default(self):
        assert self.cache.get_stale(self.owner, RRType.A, 1e9) is not None

    def test_within_bound_served(self):
        # Expired at 300; 3000 s later is within a 3600 s bound.
        assert self.cache.get_stale(
            self.owner, RRType.A, 3300.0, max_stale=3600.0
        ) is not None

    def test_beyond_bound_refused(self):
        assert self.cache.get_stale(
            self.owner, RRType.A, 300.0 + 3600.1, max_stale=3600.0
        ) is None

    def test_live_entry_unaffected_by_bound(self):
        assert self.cache.get_stale(
            self.owner, RRType.A, 100.0, max_stale=0.0
        ) is not None

    def test_unknown_name_still_none(self):
        assert self.cache.get_stale(
            Name.from_text("nope.x.test"), RRType.A, 10.0, max_stale=60.0
        ) is None


def _scan_counts(cache: DnsCache, now: float) -> tuple[int, int, int]:
    """Brute-force (entries, records, zones) oracle over the raw store."""
    live = [
        (key, entry)
        for key, entry in cache._entries.items()  # repro: ignore[REP008]
        if entry.is_live(now)
    ]
    return (
        len(live),
        sum(len(entry.rrset) for _, entry in live),
        sum(1 for key, _ in live if split_key(key)[1] == RRType.NS),
    )


def _assert_counts_match(cache: DnsCache, now: float):
    expected = _scan_counts(cache, now)
    got = (
        cache.live_entry_count(now),
        cache.live_record_count(now),
        cache.live_zone_count(now),
    )
    assert got == expected


class TestIncrementalOccupancy:
    """The O(1)-amortised counters must agree with an O(n) scan always."""

    def test_expiry_decrements(self):
        cache = DnsCache()
        cache.put(a_set(ttl=10), Rank.AUTH_ANSWER, now=0.0)
        cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        for now in (0.0, 5.0, 10.0, 50.0, 100.0, 200.0):
            _assert_counts_match(cache, now)
        assert cache.live_entry_count(200.0) == 0

    def test_multi_record_sets_counted_fully(self):
        cache = DnsCache()
        rrset = RRset.from_records([
            ResourceRecord(Name.from_text("lb.x.test"), RRType.A, 60.0,
                           "10.0.0.1"),
            ResourceRecord(Name.from_text("lb.x.test"), RRType.A, 60.0,
                           "10.0.0.2"),
        ])
        cache.put(rrset, Rank.AUTH_ANSWER, now=0.0)
        assert cache.live_record_count(1.0) == 2
        _assert_counts_match(cache, 1.0)
        _assert_counts_match(cache, 61.0)

    def test_refresh_overwrite_does_not_double_count(self):
        cache = DnsCache()
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=100.0, refresh=True)
        assert cache.live_entry_count(150.0) == 1
        _assert_counts_match(cache, 150.0)
        # The refreshed expiry (400), not the stale heap entry (300), rules.
        assert cache.live_entry_count(350.0) == 1
        _assert_counts_match(cache, 350.0)
        _assert_counts_match(cache, 400.0)
        assert cache.live_entry_count(400.0) == 0

    def test_remove_decrements(self):
        cache = DnsCache()
        cache.put(a_set(ttl=300), Rank.AUTH_ANSWER, now=0.0)
        cache.put(ns_set(ttl=300), Rank.AUTH_AUTHORITY, now=0.0)
        cache.remove(Name.from_text("x.test"), RRType.NS)
        _assert_counts_match(cache, 10.0)
        assert cache.live_zone_count(10.0) == 0

    def test_eviction_decrements(self):
        cache = DnsCache(max_entries=2)
        for index in range(5):
            cache.put(a_set(owner=f"h{index}.x.test", ttl=300),
                      Rank.AUTH_ANSWER, now=float(index))
            _assert_counts_match(cache, float(index))
        assert cache.live_entry_count(5.0) == 2

    def test_purge_keeps_counts_consistent(self):
        cache = DnsCache()
        cache.put(a_set(ttl=10), Rank.AUTH_ANSWER, now=0.0)
        cache.put(ns_set(ttl=1000), Rank.AUTH_AUTHORITY, now=0.0)
        cache.purge_expired(now=500.0)
        _assert_counts_match(cache, 500.0)
        assert cache.live_entry_count(500.0) == 1

    def test_time_running_backwards_falls_back_to_scan(self):
        cache = DnsCache()
        cache.put(a_set(ttl=10), Rank.AUTH_ANSWER, now=0.0)
        cache.put(ns_set(ttl=100), Rank.AUTH_AUTHORITY, now=0.0)
        assert cache.live_entry_count(50.0) == 1  # advances the horizon
        # Asking about the past must still be exact (scan fallback).
        assert cache.live_entry_count(5.0) == 2
        assert cache.live_record_count(5.0) == 2
        assert cache.live_zone_count(5.0) == 1
        # And monotone queries keep working afterwards.
        _assert_counts_match(cache, 60.0)
        _assert_counts_match(cache, 120.0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),   # owner index
                st.floats(min_value=1, max_value=90, allow_nan=False),  # ttl
                st.booleans(),                           # NS instead of A
            ),
            min_size=1,
            max_size=25,
        ),
        st.lists(
            st.floats(min_value=0, max_value=200, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
    )
    def test_counts_always_match_scan(self, puts, probes):
        cache = DnsCache()
        for step, (owner, ttl, is_ns) in enumerate(puts):
            now = step * 3.0
            if is_ns:
                cache.put(ns_set(zone=f"z{owner}.test", ttl=ttl),
                          Rank.AUTH_AUTHORITY, now=now)
            else:
                cache.put(a_set(owner=f"h{owner}.x.test", ttl=ttl),
                          Rank.AUTH_ANSWER, now=now)
        for now in probes:  # deliberately unsorted: exercises the fallback
            _assert_counts_match(cache, now)


class TestLruRecencyOnOverwrite:
    """Replace/refresh stores must land at the MRU end of a bounded
    cache; the old in-place overwrite kept the stale position and the
    next eviction dropped the entry that had just been rewritten."""

    def test_refresh_moves_entry_to_mru(self):
        cache = DnsCache(max_entries=2)
        cache.put(a_set(owner="a.x.test"), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(owner="b.x.test"), Rank.AUTH_ANSWER, now=1.0)
        cache.put(a_set(owner="a.x.test"), Rank.AUTH_ANSWER, now=2.0,
                  refresh=True)
        cache.put(a_set(owner="c.x.test"), Rank.AUTH_ANSWER, now=3.0)
        # `b` was the coldest entry; the refreshed `a` must survive.
        assert cache.get(Name.from_text("a.x.test"), RRType.A, 4.0) is not None
        assert cache.get(Name.from_text("b.x.test"), RRType.A, 4.0) is None

    def test_data_change_moves_entry_to_mru(self):
        cache = DnsCache(max_entries=2)
        cache.put(a_set(owner="a.x.test", address="10.0.0.1"),
                  Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(owner="b.x.test"), Rank.AUTH_ANSWER, now=1.0)
        cache.put(a_set(owner="a.x.test", address="10.0.0.9"),
                  Rank.AUTH_ANSWER, now=2.0)
        cache.put(a_set(owner="c.x.test"), Rank.AUTH_ANSWER, now=3.0)
        assert cache.get(Name.from_text("a.x.test"), RRType.A, 4.0) is not None
        assert cache.get(Name.from_text("b.x.test"), RRType.A, 4.0) is None

    def test_tombstone_overwrite_is_a_fresh_use(self):
        cache = DnsCache(max_entries=2)
        cache.put(a_set(owner="a.x.test", ttl=1.0), Rank.AUTH_ANSWER, now=0.0)
        cache.put(a_set(owner="b.x.test", ttl=100.0), Rank.AUTH_ANSWER,
                  now=0.5)
        # `a` lapsed at t=1; restoring it over its tombstone is a use.
        cache.put(a_set(owner="a.x.test", ttl=100.0), Rank.AUTH_ANSWER,
                  now=2.0)
        cache.put(a_set(owner="c.x.test", ttl=100.0), Rank.AUTH_ANSWER,
                  now=3.0)
        assert cache.get(Name.from_text("a.x.test"), RRType.A, 4.0) is not None
        assert cache.get(Name.from_text("b.x.test"), RRType.A, 4.0) is None

    def test_unbounded_cache_skips_reorder_bookkeeping(self):
        # No eviction means recency is unobservable; the overwrite path
        # must still behave identically API-wise.
        cache = DnsCache()
        cache.put(a_set(ttl=100.0), Rank.AUTH_ANSWER, now=0.0)
        result = cache.put(a_set(ttl=100.0), Rank.AUTH_ANSWER, now=10.0,
                           refresh=True)
        assert result.stored and result.refreshed
        assert cache.expires_at(Name.from_text("www.x.test"), RRType.A,
                                10.0) == 110.0


class TestNegativeCacheAccounting:
    """Negative entries occupy memory: they must be counted, purgeable,
    and cleared by remove() along with the positive entry."""

    def test_negative_counts_toward_total(self):
        cache = DnsCache()
        cache.put(a_set(), Rank.AUTH_ANSWER, now=0.0)
        cache.put_negative(Name.from_text("ghost.x.test"), RRType.A, 0.0, 60.0)
        assert cache.total_entry_count() == 2

    def test_purge_drops_lapsed_negatives(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("ghost.x.test"), RRType.A, 0.0, 10.0)
        cache.put_negative(Name.from_text("fresh.x.test"), RRType.MX, 0.0,
                           500.0)
        removed = cache.purge_expired(now=100.0)
        assert removed == 1
        assert cache.total_entry_count() == 1
        assert cache.get_negative(Name.from_text("fresh.x.test"), RRType.MX,
                                  100.0)

    def test_purge_respects_older_than_for_negatives(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("ghost.x.test"), RRType.A, 0.0, 10.0)
        assert cache.purge_expired(now=50.0, older_than=100.0) == 0
        assert cache.purge_expired(now=200.0, older_than=100.0) == 1

    def test_remove_clears_negative_verdict(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("www.x.test"), RRType.A, 0.0, 1000.0)
        assert cache.remove(Name.from_text("www.x.test"), RRType.A)
        assert not cache.get_negative(Name.from_text("www.x.test"), RRType.A,
                                      1.0)
        assert cache.total_entry_count() == 0

    def test_remove_clears_both_positive_and_negative(self):
        cache = DnsCache()
        cache.put(a_set(), Rank.AUTH_ANSWER, now=0.0)
        cache.put_negative(Name.from_text("www.x.test"), RRType.A, 0.0, 1000.0)
        assert cache.remove(Name.from_text("www.x.test"), RRType.A)
        assert cache.total_entry_count() == 0
        assert not cache.remove(Name.from_text("www.x.test"), RRType.A)
