"""Tests for RFC 2308 SOA-driven negative caching."""

import pytest

from repro.core.caching_server import ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.message import Question
from repro.dns.rrtypes import RRType
from repro.dns.zone import ZoneBuilder
from repro.dns.server import AuthoritativeServer
from repro.dns.errors import ZoneConfigError

from tests.conftest import make_stack
from tests.helpers import build_mini_internet, name


def soa_zone(minimum=120.0):
    builder = ZoneBuilder(name("soa.test."), default_ttl=3600)
    builder.add_ns("ns1.soa.test.", "10.8.0.1")
    builder.set_soa(minimum=minimum)
    builder.add_address("www.soa.test.", "10.8.0.10", ttl=300)
    return builder.build()


@pytest.fixture
def mini_with_soa():
    mini = build_mini_internet()
    zone = soa_zone()
    server = AuthoritativeServer(name("ns1.soa.test."), "10.8.0.1")
    mini.tree.add_zone(zone, [server])
    # Delegate soa.test. from the TLD (test-only surgery: the TLD was
    # built before this zone existed).
    tld = mini.tree.zone(name("test."))
    tld._delegations[name("soa.test.")] = zone.infrastructure_records
    tld._add_existing(name("soa.test."))
    return mini


class TestSoaRecord:
    def test_zone_exposes_soa(self):
        zone = soa_zone(minimum=300)
        assert zone.soa_minimum == 300
        rrset = zone.soa_rrset()
        assert rrset is not None
        assert rrset.rrtype is RRType.SOA
        assert str(rrset.records[0].data).endswith("300")

    def test_invalid_minimum_rejected(self):
        builder = ZoneBuilder(name("x.test."))
        with pytest.raises(ZoneConfigError):
            builder.set_soa(minimum=0)

    def test_negative_answer_carries_soa_not_ns(self):
        zone = soa_zone()
        server = AuthoritativeServer(name("ns1.soa.test."), "10.8.0.1")
        server.serve_zone(zone)
        response = server.respond(Question(name("ghost.soa.test."), RRType.A))
        types = [rrset.rrtype for rrset in response.authority]
        assert types == [RRType.SOA]
        assert response.additional == ()

    def test_zone_without_soa_keeps_legacy_sections(self):
        mini = build_mini_internet()
        server = mini.tree.server_by_name(name("ns1.example.test."))
        response = server.respond(Question(name("ghost.example.test."), RRType.A))
        assert any(r.rrtype is RRType.NS for r in response.authority)


class TestResolverNegativeTtl:
    def test_negative_ttl_follows_soa_minimum(self, mini_with_soa):
        server, engine, network, metrics = make_stack(
            mini_with_soa, ResilienceConfig.vanilla()
        )
        first = server.handle_stub_query(name("ghost.soa.test."), RRType.A, 0.0)
        assert first.outcome is ResolutionOutcome.NXDOMAIN
        queries = metrics.cs_demand_queries
        # Within the 120 s SOA minimum: served from the negative cache.
        second = server.handle_stub_query(name("ghost.soa.test."), RRType.A, 60.0)
        assert second.outcome is ResolutionOutcome.NXDOMAIN
        assert metrics.cs_demand_queries == queries
        # After 120 s the negative entry expired: re-queries the network.
        third = server.handle_stub_query(name("ghost.soa.test."), RRType.A, 200.0)
        assert third.outcome is ResolutionOutcome.NXDOMAIN
        assert metrics.cs_demand_queries > queries

    def test_default_negative_ttl_without_soa(self, mini_with_soa):
        config = ResilienceConfig.vanilla()
        server, engine, network, metrics = make_stack(mini_with_soa, config)
        server.handle_stub_query(name("ghost.example.test."), RRType.A, 0.0)
        queries = metrics.cs_demand_queries
        # Default negative TTL is 3600 s: still negatively cached at 1000 s.
        server.handle_stub_query(name("ghost.example.test."), RRType.A, 1000.0)
        assert metrics.cs_demand_queries == queries

    def test_nodata_also_uses_soa_minimum(self, mini_with_soa):
        server, engine, network, metrics = make_stack(
            mini_with_soa, ResilienceConfig.vanilla()
        )
        first = server.handle_stub_query(name("www.soa.test."), RRType.MX, 0.0)
        assert first.outcome is ResolutionOutcome.NODATA
        queries = metrics.cs_demand_queries
        server.handle_stub_query(name("www.soa.test."), RRType.MX, 60.0)
        assert metrics.cs_demand_queries == queries
        server.handle_stub_query(name("www.soa.test."), RRType.MX, 200.0)
        assert metrics.cs_demand_queries > queries
