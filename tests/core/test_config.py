"""Tests for ResilienceConfig factories."""

import pytest

from repro.core.config import DAY, ResilienceConfig
from repro.core.policies import AdaptiveLFUPolicy, LRUPolicy


class TestFactories:
    def test_vanilla(self):
        config = ResilienceConfig.vanilla()
        assert not config.ttl_refresh
        assert config.renewal_policy is None
        assert config.long_ttl is None
        assert config.describe() == "vanilla"

    def test_refresh(self):
        config = ResilienceConfig.refresh()
        assert config.ttl_refresh
        assert "ttl-refresh" in config.describe()

    def test_refresh_renew_builds_policy(self):
        config = ResilienceConfig.refresh_renew("lru", 3)
        policy = config.make_renewal_policy()
        assert isinstance(policy, LRUPolicy)
        assert policy.credit == 3

    def test_refresh_renew_rejects_bad_policy_eagerly(self):
        with pytest.raises(ValueError):
            ResilienceConfig.refresh_renew("nope", 3)

    def test_each_make_returns_fresh_policy(self):
        config = ResilienceConfig.refresh_renew("lfu", 3)
        assert config.make_renewal_policy() is not config.make_renewal_policy()

    def test_long_ttl_days_converted(self):
        config = ResilienceConfig.refresh_long_ttl(3)
        assert config.long_ttl == 3 * DAY

    def test_combination_defaults_match_paper(self):
        config = ResilienceConfig.combination()
        assert config.ttl_refresh
        assert config.long_ttl == 3 * DAY
        assert isinstance(config.make_renewal_policy(), AdaptiveLFUPolicy)

    def test_stale_serving(self):
        config = ResilienceConfig.stale_serving()
        assert config.serve_stale
        assert not config.ttl_refresh

    def test_with_label(self):
        config = ResilienceConfig.vanilla().with_label("x")
        assert config.label == "x"
        assert not config.ttl_refresh

    def test_describe_combination(self):
        text = ResilienceConfig.combination().describe()
        assert "ttl-refresh" in text
        assert "renewal" in text
        assert "long-ttl" in text

    def test_default_max_effective_ttl_is_seven_days(self):
        assert ResilienceConfig.vanilla().max_effective_ttl == 7 * DAY
