"""Tests for dead-server hold-down and RTT-based server selection."""

from dataclasses import replace

import pytest

from repro.core.config import ResilienceConfig, RetryPolicy
from repro.simulation.attack import attack_on_zones
from repro.simulation.faults import FaultSpec
from repro.dns.rrtypes import RRType

from tests.conftest import make_stack
from tests.helpers import HOUR, build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


class TestHolddown:
    def test_failed_server_not_retried_within_holddown(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=10 * HOUR)
        config = replace(ResilienceConfig.vanilla(), server_holddown=600.0)
        server, engine, network, metrics = make_stack(mini, config,
                                                      attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first_round = metrics.cs_demand_failures
        assert first_round >= 2  # both SLD servers tried and failed
        # Within the hold-down window the dead servers are skipped: the
        # retry generates strictly fewer failed queries.
        server.handle_stub_query(name("www.example.test."), RRType.A, 100.0)
        second_round = metrics.cs_demand_failures - first_round
        assert second_round < first_round

    def test_holddown_expires(self, mini):
        # Attack ends at 1 h; after hold-down expiry the server works.
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)
        config = replace(ResilienceConfig.vanilla(), server_holddown=600.0)
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        late = server.handle_stub_query(name("www.example.test."), RRType.A,
                                        1.5 * HOUR)
        assert not late.failed

    def test_success_clears_holddown(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=100.0)
        config = replace(ResilienceConfig.vanilla(), server_holddown=50.0)
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # Attack over at 100; hold-down (till ~50-150) may still apply,
        # but once any query succeeds the state is cleared.
        ok = server.handle_stub_query(name("www.example.test."), RRType.A, 200.0)
        assert not ok.failed
        assert not server._held_down or all(
            deadline <= 200.0 for deadline in server._held_down.values()
        )

    def test_disabled_by_default(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=10 * HOUR)
        server, engine, network, metrics = make_stack(
            mini, ResilienceConfig.vanilla(), attacks=attacks
        )
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first = metrics.cs_demand_failures
        server.handle_stub_query(name("www.example.test."), RRType.A, 100.0)
        # Without hold-down, the same dead servers are retried in full.
        assert metrics.cs_demand_failures - first >= 2


class TestRttSelection:
    def test_prefers_faster_server_after_learning(self, mini):
        config = replace(ResilienceConfig.vanilla(), prefer_fast_servers=True)
        server, engine, network, metrics = make_stack(mini, config)
        # Warm up RTT estimates for both example.test. servers: the data
        # TTL is 600 s, so re-resolve repeatedly.
        for step in range(8):
            server.handle_stub_query(name("www.example.test."), RRType.A,
                                     step * 700.0)
        addresses = [
            mini.address_of("ns1.example.test."),
            mini.address_of("ns2.example.test."),
        ]
        known = [a for a in addresses if server.srtt_of(a) is not None]
        assert known, "no RTT estimates learned"
        fast = min(addresses, key=network.latency.rtt_for)
        # Once both are known, further queries should go to the fast one;
        # its estimate converges towards its true RTT.
        if len(known) == 2:
            slow = max(addresses, key=network.latency.rtt_for)
            assert server.srtt_of(fast) <= server.srtt_of(slow) + 1e-9

    def test_rtt_for_is_stable_and_spread(self, mini):
        from repro.simulation.network import LatencyModel
        model = LatencyModel(rtt=0.04, rtt_spread=0.5)
        a = model.rtt_for("10.0.0.1")
        assert a == model.rtt_for("10.0.0.1")
        values = {model.rtt_for(f"10.0.0.{i}") for i in range(1, 20)}
        assert len(values) > 10
        assert all(0.02 - 1e-9 <= v <= 0.06 + 1e-9 for v in values)

    def test_zero_spread_uniform(self):
        from repro.simulation.network import LatencyModel
        model = LatencyModel(rtt=0.04, rtt_spread=0.0)
        assert model.rtt_for("10.0.0.1") == 0.04


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_tries=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(try_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(holddown_failures=0)
        with pytest.raises(ValueError):
            RetryPolicy(holddown=-1.0)

    def test_try_cost_follows_backoff(self):
        policy = RetryPolicy(max_tries=3, try_timeout=1.0, backoff=3.0)
        assert policy.try_cost(2.0, 0) == 1.0
        assert policy.try_cost(2.0, 1) == 3.0
        assert policy.try_cost(2.0, 2) == 9.0
        # try_timeout=None falls back to the network's base timeout.
        assert RetryPolicy().try_cost(2.0, 1) == 4.0

    def test_with_retries_label(self):
        config = ResilienceConfig.refresh().with_retries(
            RetryPolicy(max_tries=3)
        )
        assert config.label == "refresh+retry3"
        assert "retries(3x2)" in config.describe()

    def test_retries_retransmit_to_timed_out_servers(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)
        single = make_stack(mini, ResilienceConfig.vanilla(), attacks=attacks)
        single[0].handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        base_sent = single[2].queries_sent

        config = ResilienceConfig.vanilla().with_retries(
            RetryPolicy(max_tries=3, holddown=None)
        )
        retried = make_stack(mini, config, attacks=attacks)
        retried[0].handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        assert retried[2].queries_sent > base_sent

    def test_no_retransmit_to_lame_servers(self, mini):
        # A lame delegation answers fast and deterministically; the retry
        # loop must not retransmit to it.
        config = ResilienceConfig.vanilla().with_retries(
            RetryPolicy(max_tries=3, holddown=None)
        )
        plain = make_stack(mini, ResilienceConfig.vanilla())
        plain[0].handle_stub_query(name("www.unrelated.alt."), RRType.A, 0.0)
        retried = make_stack(mini, config)
        retried[0].handle_stub_query(name("www.unrelated.alt."), RRType.A, 0.0)
        assert retried[2].queries_sent == plain[2].queries_sent

    def test_backoff_inflates_recorded_latency(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)

        def total_latency(backoff):
            config = ResilienceConfig.vanilla().with_retries(
                RetryPolicy(max_tries=3, backoff=backoff, holddown=None)
            )
            server, engine, network, metrics = make_stack(
                mini, config, attacks=attacks
            )
            server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
            return metrics.total_latency

        assert total_latency(3.0) > total_latency(1.0)

    def test_consecutive_failures_trigger_holddown(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)
        config = ResilienceConfig.vanilla().with_retries(
            RetryPolicy(max_tries=2, holddown_failures=2, holddown=500.0)
        )
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # Both SLD servers failed twice in a row -> both sidelined, and
        # the failure counters restart for a clean post-hold-down slate.
        held = [a for a, until in server._held_down.items() if until > 0.0]
        assert len(held) >= 2
        assert not server._consecutive_failures

    def test_holddown_expires_and_success_clears_state(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=600.0)
        config = ResilienceConfig.vanilla().with_retries(
            RetryPolicy(max_tries=2, holddown_failures=2, holddown=300.0)
        )
        server, *_ = make_stack(mini, config, attacks=attacks)
        failed = server.handle_stub_query(name("www.example.test."),
                                          RRType.A, 0.0)
        assert failed.failed
        # Attack over at 600, hold-downs expired at ~300: recovery.
        late = server.handle_stub_query(name("www.example.test."),
                                        RRType.A, 700.0)
        assert not late.failed
        assert not server._consecutive_failures

    def test_flapping_server_loses_srtt_preference(self, mini):
        flappy = mini.address_of("ns1.example.test.")
        steady = mini.address_of("ns2.example.test.")
        injector = FaultSpec(
            flap_period=100.0, flap_duty=0.0, flap_addresses=(flappy,)
        ).build(seed=1)
        config = replace(
            ResilienceConfig.vanilla().with_retries(
                RetryPolicy(max_tries=2, holddown=None)
            ),
            prefer_fast_servers=True,
        )
        server, *_ = make_stack(mini, config, faults=injector)
        for step in range(8):
            server.handle_stub_query(name("www.example.test."), RRType.A,
                                     step * 700.0)
        # Failed tries feed the smoothed RTT: the always-down server's
        # estimate dwarfs the steady server's real RTT.
        assert server.srtt_of(flappy) is not None
        assert server.srtt_of(steady) is not None
        assert server.srtt_of(flappy) > server.srtt_of(steady)
