"""Tests for dead-server hold-down and RTT-based server selection."""

from dataclasses import replace

import pytest

from repro.core.config import ResilienceConfig
from repro.simulation.attack import attack_on_zones
from repro.dns.rrtypes import RRType

from tests.conftest import make_stack
from tests.helpers import HOUR, build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


class TestHolddown:
    def test_failed_server_not_retried_within_holddown(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=10 * HOUR)
        config = replace(ResilienceConfig.vanilla(), server_holddown=600.0)
        server, engine, network, metrics = make_stack(mini, config,
                                                      attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first_round = metrics.cs_demand_failures
        assert first_round >= 2  # both SLD servers tried and failed
        # Within the hold-down window the dead servers are skipped: the
        # retry generates strictly fewer failed queries.
        server.handle_stub_query(name("www.example.test."), RRType.A, 100.0)
        second_round = metrics.cs_demand_failures - first_round
        assert second_round < first_round

    def test_holddown_expires(self, mini):
        # Attack ends at 1 h; after hold-down expiry the server works.
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=HOUR)
        config = replace(ResilienceConfig.vanilla(), server_holddown=600.0)
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        late = server.handle_stub_query(name("www.example.test."), RRType.A,
                                        1.5 * HOUR)
        assert not late.failed

    def test_success_clears_holddown(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=100.0)
        config = replace(ResilienceConfig.vanilla(), server_holddown=50.0)
        server, *_ = make_stack(mini, config, attacks=attacks)
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        # Attack over at 100; hold-down (till ~50-150) may still apply,
        # but once any query succeeds the state is cleared.
        ok = server.handle_stub_query(name("www.example.test."), RRType.A, 200.0)
        assert not ok.failed
        assert not server._held_down or all(
            deadline <= 200.0 for deadline in server._held_down.values()
        )

    def test_disabled_by_default(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=10 * HOUR)
        server, engine, network, metrics = make_stack(
            mini, ResilienceConfig.vanilla(), attacks=attacks
        )
        server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
        first = metrics.cs_demand_failures
        server.handle_stub_query(name("www.example.test."), RRType.A, 100.0)
        # Without hold-down, the same dead servers are retried in full.
        assert metrics.cs_demand_failures - first >= 2


class TestRttSelection:
    def test_prefers_faster_server_after_learning(self, mini):
        config = replace(ResilienceConfig.vanilla(), prefer_fast_servers=True)
        server, engine, network, metrics = make_stack(mini, config)
        # Warm up RTT estimates for both example.test. servers: the data
        # TTL is 600 s, so re-resolve repeatedly.
        for step in range(8):
            server.handle_stub_query(name("www.example.test."), RRType.A,
                                     step * 700.0)
        addresses = [
            mini.address_of("ns1.example.test."),
            mini.address_of("ns2.example.test."),
        ]
        known = [a for a in addresses if a in server._srtt]
        assert known, "no RTT estimates learned"
        fast = min(addresses, key=network.latency.rtt_for)
        # Once both are known, further queries should go to the fast one;
        # its estimate converges towards its true RTT.
        if len(known) == 2:
            assert server._srtt[fast] <= server._srtt[
                max(addresses, key=network.latency.rtt_for)
            ] + 1e-9

    def test_rtt_for_is_stable_and_spread(self, mini):
        from repro.simulation.network import LatencyModel
        model = LatencyModel(rtt=0.04, rtt_spread=0.5)
        a = model.rtt_for("10.0.0.1")
        assert a == model.rtt_for("10.0.0.1")
        values = {model.rtt_for(f"10.0.0.{i}") for i in range(1, 20)}
        assert len(values) > 10
        assert all(0.02 - 1e-9 <= v <= 0.06 + 1e-9 for v in values)

    def test_zero_spread_uniform(self):
        from repro.simulation.network import LatencyModel
        model = LatencyModel(rtt=0.04, rtt_spread=0.0)
        assert model.rtt_for("10.0.0.1") == 0.04
