"""Shared fixtures: the mini hand-built internet and a resolver stack."""

from __future__ import annotations

import pytest

from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network

from tests.helpers import MiniInternet, build_mini_internet


@pytest.fixture
def mini() -> MiniInternet:
    """A fresh hand-built miniature hierarchy."""
    return build_mini_internet()


@pytest.fixture
def resolver_stack(mini):
    """(server, engine, network, metrics) running the vanilla config."""
    return make_stack(mini, ResilienceConfig.vanilla())


def make_stack(
    mini: MiniInternet,
    config: ResilienceConfig,
    attacks=None,
    gap_observer=None,
    faults=None,
    validation=False,
):
    """Build a CachingServer wired to the mini internet."""
    engine = SimulationEngine()
    network = Network(mini.tree, attacks=attacks, faults=faults)
    metrics = ReplayMetrics()
    server = CachingServer(
        root_hints=mini.tree.root_hints(),
        network=network,
        clock=engine,
        config=config,
        metrics=metrics,
        gap_observer=gap_observer,
        validation=validation,
    )
    return server, engine, network, metrics
