"""Tests for message delivery and reachability."""

import pytest

from repro.dns.message import Question
from repro.dns.rrtypes import RRType
from repro.simulation.attack import attack_on_zones
from repro.simulation.network import LatencyModel, Network

from tests.helpers import build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


def question(text="www.example.test."):
    return Question(name(text), RRType.A)


class TestDelivery:
    def test_answered_query(self, mini):
        network = Network(mini.tree)
        result = network.query(
            mini.address_of("ns1.example.test."), question(), now=0.0
        )
        assert result.answered
        assert result.message.answer
        address = mini.address_of("ns1.example.test.")
        assert result.latency == network.latency.rtt_for(address)

    def test_unknown_address_times_out(self, mini):
        network = Network(mini.tree)
        result = network.query("203.0.113.99", question(), now=0.0)
        assert not result.answered
        assert result.latency == network.latency.timeout

    def test_blocked_address_times_out(self, mini):
        attacks = attack_on_zones(mini.tree, [name("example.test.")],
                                  start=0.0, duration=100.0)
        network = Network(mini.tree, attacks=attacks)
        address = mini.address_of("ns1.example.test.")
        blocked = network.query(address, question(), now=50.0)
        assert not blocked.answered
        after = network.query(address, question(), now=150.0)
        assert after.answered

    def test_lame_server_returns_unanswered_fast(self, mini):
        network = Network(mini.tree)
        result = network.query(
            mini.address_of("ns1.example.test."), question("www.unrelated.alt."),
            now=0.0,
        )
        assert not result.answered
        # REFUSED, not a timeout: the cost is one round trip.
        address = mini.address_of("ns1.example.test.")
        assert result.latency == network.latency.rtt_for(address)

    def test_counters(self, mini):
        network = Network(mini.tree)
        network.query(mini.address_of("ns1.example.test."), question(), 0.0)
        network.query("203.0.113.99", question(), 0.0)
        assert network.queries_sent == 2
        assert network.queries_lost == 1

    def test_is_reachable(self, mini):
        attacks = attack_on_zones(mini.tree, [name("test.")],
                                  start=0.0, duration=10.0)
        network = Network(mini.tree, attacks=attacks)
        address = mini.address_of("ns1.test.")
        assert not network.is_reachable(address, 5.0)
        assert network.is_reachable(address, 15.0)
        assert not network.is_reachable("203.0.113.99", 15.0)

    def test_custom_latency_model(self, mini):
        model = LatencyModel(rtt=0.1, timeout=5.0, rtt_spread=0.0)
        network = Network(mini.tree, latency=model)
        ok = network.query(mini.address_of("a.root."), question(), 0.0)
        lost = network.query("203.0.113.99", question(), 0.0)
        assert ok.latency == 0.1
        assert lost.latency == 5.0

    def test_set_attacks_swaps_schedule(self, mini):
        network = Network(mini.tree)
        address = mini.address_of("a.root.")
        assert network.is_reachable(address, 0.0)
        network.set_attacks(
            attack_on_zones(mini.tree, [name(".")], start=0.0, duration=10.0)
        )
        assert not network.is_reachable(address, 5.0)
