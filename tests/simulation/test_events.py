"""Unit + property tests for the flat event queue."""

from hypothesis import given, strategies as st

from repro.simulation.events import EventQueue


def noop(_):
    pass


def drain(queue, limit=float("inf")):
    """Pop every due event, returning the (time, action) pairs."""
    items = []
    while (item := queue.pop_due(limit)) is not None:
        items.append(item)
    return items


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, noop)
        queue.push(1.0, noop)
        queue.push(2.0, noop)
        times = [queue.pop()[0] for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda t: order.append("first"))
        queue.push(1.0, lambda t: order.append("second"))
        for time, action in drain(queue):
            action(time)
        assert order == ["first", "second"]

    def test_pop_due_respects_limit(self):
        queue = EventQueue()
        queue.push(1.0, noop)
        queue.push(5.0, noop)
        assert queue.pop_due(3.0)[0] == 1.0
        assert queue.pop_due(3.0) is None
        # The later event survives for a wider drain.
        assert queue.pop_due(10.0)[0] == 5.0

    def test_cancel_prevents_delivery(self):
        queue = EventQueue()
        token = queue.push(1.0, noop)
        queue.push(2.0, noop)
        assert queue.cancel(token)
        popped = queue.pop()
        assert popped[0] == 2.0
        assert queue.pop() is None

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        token = queue.push(1.0, noop)
        assert queue.cancel(token)
        assert not queue.cancel(token)
        assert queue.pop() is None

    def test_cancel_after_delivery_is_rejected(self):
        queue = EventQueue()
        token = queue.push(1.0, noop)
        assert queue.pop() is not None
        assert not queue.cancel(token)

    def test_slot_reuse_does_not_confuse_cancellation(self):
        # Cancelling frees a slot; the next push may reuse it.  The stale
        # token must not be able to cancel the new occupant, and the
        # stale heap tombstone must not shadow it.
        queue = EventQueue()
        stale = queue.push(1.0, noop)
        queue.cancel(stale)
        order = []
        queue.push(2.0, lambda t: order.append("live"))
        assert not queue.cancel(stale)
        for time, action in drain(queue):
            action(time)
        assert order == ["live"]

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, noop)
        queue.push(5.0, noop)
        queue.cancel(first)
        assert queue.peek_time() == 5.0

    def test_len_counts_live_only(self):
        queue = EventQueue()
        token = queue.push(1.0, noop)
        queue.push(2.0, noop)
        queue.cancel(token)
        assert len(queue) == 1
        assert queue.is_empty() is False

    def test_empty_behaviour(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.pop_due(100.0) is None
        assert queue.peek_time() is None
        assert not queue
        assert queue.is_empty()

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, noop)
        popped = [item[0] for item in drain(queue)]
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                 min_size=2, max_size=30),
        st.data(),
    )
    def test_cancelled_subset_never_delivered(self, times, data):
        queue = EventQueue()
        tokens = [queue.push(time, noop) for time in times]
        doomed = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(tokens) - 1)))
        for index in doomed:
            queue.cancel(tokens[index])
        survivors = sorted(
            time for index, time in enumerate(times) if index not in doomed
        )
        popped = [item[0] for item in drain(queue)]
        assert popped == survivors

    @given(
        st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                     allow_nan=False),
                           st.booleans()),
                 min_size=1, max_size=40),
    )
    def test_interleaved_push_cancel_reuse(self, plan):
        # Free-list slot recycling under an arbitrary push/cancel
        # interleaving must deliver exactly the never-cancelled events.
        queue = EventQueue()
        expected = []
        for time, cancel_it in plan:
            token = queue.push(time, noop)
            if cancel_it:
                queue.cancel(token)
            else:
                expected.append(time)
        popped = [item[0] for item in drain(queue)]
        assert popped == sorted(expected)
        assert len(queue) == 0
