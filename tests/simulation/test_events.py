"""Unit + property tests for the event queue."""

from hypothesis import given, strategies as st

from repro.simulation.events import EventQueue


def noop(_):
    pass


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, noop)
        queue.push(1.0, noop)
        queue.push(2.0, noop)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda t: order.append("first"))
        queue.push(1.0, lambda t: order.append("second"))
        while (handle := queue.pop()) is not None:
            handle.action(handle.time)
        assert order == ["first", "second"]

    def test_cancel_prevents_delivery(self):
        queue = EventQueue()
        handle = queue.push(1.0, noop)
        queue.push(2.0, noop)
        handle.cancel()
        popped = queue.pop()
        assert popped.time == 2.0
        assert queue.pop() is None

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(1.0, noop)
        handle.cancel()
        handle.cancel()
        assert queue.pop() is None

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, noop)
        queue.push(5.0, noop)
        first.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_live_only(self):
        queue = EventQueue()
        handle = queue.push(1.0, noop)
        queue.push(2.0, noop)
        handle.cancel()
        assert len(queue) == 1

    def test_empty_behaviour(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, noop)
        popped = []
        while (handle := queue.pop()) is not None:
            popped.append(handle.time)
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                 min_size=2, max_size=30),
        st.data(),
    )
    def test_cancelled_subset_never_delivered(self, times, data):
        queue = EventQueue()
        handles = [queue.push(time, noop) for time in times]
        doomed = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(handles) - 1)))
        for index in doomed:
            handles[index].cancel()
        survivors = sorted(
            time for index, time in enumerate(times) if index not in doomed
        )
        popped = []
        while (handle := queue.pop()) is not None:
            popped.append(handle.time)
        assert popped == survivors
