"""Tests for the Adversary 2.0 layer (NXNS, poisoning, flash crowds)."""

import dataclasses

import pytest

from repro.core.config import ResilienceConfig
from repro.dns.message import Question
from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.experiments.harness import run_replay
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.scenarios import Scale, make_scenario
from repro.hierarchy.builder import graft_attacker_zone, ungraft_attacker_zone
from repro.obs import ObservationSpec
from repro.simulation.adversary import (
    AdversarySpec,
    FlashCrowdSpec,
    NxnsAttackSpec,
    PoisonAttackSpec,
    Poisoner,
)
from repro.workload.generator import flash_crowd_schedule

from tests.helpers import build_mini_internet, name

MINUTE = 60.0
HOUR = 3600.0


@pytest.fixture
def mini():
    return build_mini_internet()


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"start": -1.0},
        {"duration": 0.0},
        {"queries_per_minute": 0.0},
        {"fan_out": 0},
        {"delegations": 0},
    ])
    def test_bad_nxns_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NxnsAttackSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0},
        {"rate": 1.5},
        {"success": 0.0},
        {"ttl": -10.0},
        {"start": -1.0},
        {"duration": 0.0},
    ])
    def test_bad_poison_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PoisonAttackSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"start": -1.0},
        {"duration": 0.0},
        {"queries_per_minute": -5.0},
        {"hot_zones": 0},
        {"zipf_alpha": 0.0},
    ])
    def test_bad_flash_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlashCrowdSpec(**kwargs)

    def test_empty_spec_is_inert(self):
        assert AdversarySpec().inert

    def test_any_family_is_not_inert(self):
        assert not AdversarySpec(nxns=NxnsAttackSpec()).inert
        assert not AdversarySpec(poison=PoisonAttackSpec()).inert
        assert not AdversarySpec(flash=FlashCrowdSpec()).inert


class TestNxnsQueryStream:
    def test_count_and_window(self):
        spec = NxnsAttackSpec(
            start=100.0, duration=600.0, queries_per_minute=12.0,
            fan_out=3, delegations=4,
        )
        stream = spec.query_stream(name("nxns-attacker.alt."))
        assert len(stream) == 120  # 600 s at one query every 5 s
        times = [time for time, _ in stream]
        assert times[0] == 100.0
        assert times == sorted(times)
        assert times[-1] < 100.0 + 600.0

    def test_round_robin_children_and_fresh_labels(self):
        apex = name("nxns-attacker.alt.")
        spec = NxnsAttackSpec(
            start=0.0, duration=60.0, queries_per_minute=60.0,
            fan_out=2, delegations=3,
        )
        stream = spec.query_stream(apex)
        qnames = [qname for _, qname in stream]
        # Every qname is unique (cache busting) and cycles the children.
        assert len(set(qnames)) == len(qnames)
        for index, qname in enumerate(qnames):
            assert qname.parent() == apex.child(f"s{index % 3}")


class TestPoisoner:
    def question(self, text="www.example.test."):
        return Question(name(text), RRType.A)

    def forger(self, **kwargs):
        defaults = {"rate": 1.0, "success": 1.0}
        defaults.update(kwargs)
        return Poisoner(PoisonAttackSpec(**defaults), seed=3)

    def test_certain_race_forges_the_question(self):
        poisoner = self.forger()
        message = poisoner.race("10.0.0.1", self.question(), now=0.0)
        assert message is not None
        assert message.forged
        assert message.authoritative
        (rrset,) = message.answer
        assert rrset.name == name("www.example.test.")
        assert rrset.ttl == poisoner.spec.ttl
        assert {str(r.data) for r in rrset.records} == {poisoner.spec.address}
        assert poisoner.attempts == poisoner.wins == 1

    def test_forgeries_are_memoized_per_question(self):
        poisoner = self.forger()
        first = poisoner.race("10.0.0.1", self.question(), now=0.0)
        second = poisoner.race("10.0.0.2", self.question(), now=1.0)
        assert first is second

    def test_non_a_questions_are_never_raced(self):
        poisoner = self.forger()
        question = Question(name("example.test."), RRType.NS)
        assert poisoner.race("10.0.0.1", question, now=0.0) is None
        assert poisoner.attempts == 0

    def test_window_respected(self):
        poisoner = self.forger(start=100.0, duration=50.0)
        assert poisoner.race("a", self.question(), now=99.0) is None
        assert poisoner.race("a", self.question(), now=100.0) is not None
        assert poisoner.race("a", self.question(), now=150.0) is None

    def test_two_same_seed_poisoners_agree(self):
        spec = PoisonAttackSpec(rate=0.3, success=0.5)
        first = Poisoner(spec, seed=9)
        second = Poisoner(spec, seed=9)
        for ordinal in range(200):
            address = f"10.0.0.{ordinal % 4}"
            a = first.race(address, self.question(), now=float(ordinal))
            b = second.race(address, self.question(), now=float(ordinal))
            assert (a is None) == (b is None)
        assert first.attempts == second.attempts
        assert first.wins == second.wins

    def test_entropy_bits_scale_down_the_win_rate(self):
        spec = PoisonAttackSpec(rate=1.0, success=1.0)
        open_forger = Poisoner(spec, seed=5, entropy_bits=0)
        guarded = Poisoner(spec, seed=5, entropy_bits=4)
        for ordinal in range(2000):
            open_forger.race("a", self.question(), now=float(ordinal))
            guarded.race("a", self.question(), now=float(ordinal))
        assert open_forger.wins == 2000
        # 4 bits leave 1/16 of the races winnable.
        assert 0.02 < guarded.wins / 2000 < 0.12


class TestFlashCrowdSchedule:
    def catalog(self):
        return {
            name(f"z{i}.test."): [name(f"www.z{i}.test.")] for i in range(8)
        }

    def test_deterministic_and_bounded(self):
        kwargs = dict(
            start=50.0, duration=300.0, queries_per_minute=60.0,
            hot_zones=3, zipf_alpha=1.2, seed=7,
        )
        first = flash_crowd_schedule(self.catalog(), **kwargs)
        second = flash_crowd_schedule(self.catalog(), **kwargs)
        assert first == second
        assert len(first) == 300
        hot = {name(f"www.z{i}.test.") for i in range(3)}
        assert {qname for _, qname in first} <= hot
        assert all(50.0 <= time < 350.0 for time, _ in first)

    def test_skew_prefers_the_first_target(self):
        schedule = flash_crowd_schedule(
            self.catalog(), start=0.0, duration=600.0,
            queries_per_minute=60.0, hot_zones=4, zipf_alpha=1.2, seed=1,
        )
        counts = {}
        for _, qname in schedule:
            counts[qname] = counts.get(qname, 0) + 1
        assert counts[name("www.z0.test.")] == max(counts.values())

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            flash_crowd_schedule(
                {}, start=0.0, duration=60.0, queries_per_minute=60.0,
                hot_zones=2, zipf_alpha=1.0,
            )


class TestGraftRoundTrip:
    def test_graft_then_ungraft_restores_the_tree(self, mini):
        tree = mini.tree
        parent = sorted(tree.tld_names())[0]
        before_zones = tree.zone_names()
        before_children = tree.zone(parent).child_zone_names()

        graft = graft_attacker_zone(tree, fan_out=4, delegations=3)
        assert graft.parent == parent
        assert graft.apex == parent.child("nxns-attacker")
        assert graft.apex in tree.zone_names()
        attacker = tree.zone(graft.apex)
        children = attacker.child_zone_names()
        assert len(children) == 3
        for child in attacker.delegations():
            assert len(child.server_names()) == 4

        ungraft_attacker_zone(tree, graft)
        assert tree.zone_names() == before_zones
        assert tree.zone(parent).child_zone_names() == before_children

    def test_graft_validates_arguments(self, mini):
        with pytest.raises(ValueError):
            graft_attacker_zone(mini.tree, fan_out=0, delegations=3)


class TestAdversarialReplay:
    """Replay-level behavior on the shared TINY scenario.

    Attack windows are deliberately short (10 simulated minutes) so the
    whole class stays in test-suite time budget while still driving
    hundreds of adversarial arrivals through the real resolver."""

    def nxns(self, scenario, fan_out, **kwargs):
        defaults = dict(
            start=scenario.attack_start, duration=600.0,
            queries_per_minute=30.0, fan_out=fan_out, delegations=5,
        )
        defaults.update(kwargs)
        return AdversarySpec(nxns=NxnsAttackSpec(**defaults))

    def replay(self, scenario, config, **kwargs):
        return run_replay(
            scenario.built, scenario.trace("TRC1"), config, **kwargs
        )

    def test_amplification_scales_with_fan_out(self, scenario):
        config = ResilienceConfig.vanilla()
        narrow = self.replay(
            scenario, config, adversary=self.nxns(scenario, fan_out=2)
        )
        wide = self.replay(
            scenario, config, adversary=self.nxns(scenario, fan_out=8)
        )
        assert narrow.metrics.attack_stub_queries == 300
        assert wide.metrics.attack_stub_queries == 300
        assert 1.0 < narrow.metrics.amplification_factor
        assert (
            narrow.metrics.amplification_factor
            < wide.metrics.amplification_factor
        )

    def test_fetch_budget_clamps_and_leaves_legit_traffic_alone(
        self, scenario
    ):
        adversary = self.nxns(scenario, fan_out=8)
        baseline = self.replay(scenario, ResilienceConfig.vanilla())
        open_run = self.replay(
            scenario, ResilienceConfig.vanilla(), adversary=adversary
        )
        defended = self.replay(
            scenario,
            ResilienceConfig.vanilla().with_defenses(fetch_budget=2),
            adversary=adversary,
        )
        assert defended.metrics.budget_exhaustions > 0
        assert (
            defended.metrics.amplification_factor
            < open_run.metrics.amplification_factor
        )
        # SR-side accounting stays legitimate-only: the attack stream
        # must not inflate (or degrade) the stub-query census.
        assert open_run.metrics.sr_queries == baseline.metrics.sr_queries
        assert defended.metrics.sr_queries == baseline.metrics.sr_queries

    def test_nxns_cap_clamps_per_referral_fan_out(self, scenario):
        adversary = self.nxns(scenario, fan_out=8)
        open_run = self.replay(
            scenario, ResilienceConfig.vanilla(), adversary=adversary
        )
        capped = self.replay(
            scenario,
            ResilienceConfig.vanilla().with_defenses(nxns_cap=2),
            adversary=adversary,
        )
        assert capped.metrics.nxns_capped > 0
        assert (
            capped.metrics.amplification_factor
            < open_run.metrics.amplification_factor
        )

    def test_inert_spec_is_byte_identical_to_no_adversary(self, scenario):
        config = ResilienceConfig.refresh()
        baseline = self.replay(scenario, config)
        inert = self.replay(scenario, config, adversary=AdversarySpec())
        assert inert.to_summary() == baseline.to_summary()

    def test_poisoning_accounting_and_guard(self, scenario):
        adversary = AdversarySpec(
            poison=PoisonAttackSpec(rate=0.2, success=0.5, ttl=HOUR)
        )
        config = ResilienceConfig.vanilla()
        poisoned = self.replay(scenario, config, adversary=adversary)
        metrics = poisoned.metrics
        assert metrics.poison_attempts > 0
        assert metrics.poison_attempts >= metrics.poison_wins > 0
        assert metrics.poison_stored > 0
        assert metrics.poison_stored >= metrics.poison_cured
        assert len(metrics.poison_dwells) > 0
        assert all(dwell >= 0.0 for dwell in metrics.poison_dwells)
        # A forged record can dwell no longer than the TTL it advertised.
        assert max(metrics.poison_dwells) <= HOUR + 1e-6

        guarded_config = dataclasses.replace(
            config, harden_ranking=True, source_entropy_bits=4,
            protect_irrs=True, label="vanilla+guard",
        )
        guarded = self.replay(scenario, guarded_config, adversary=adversary)
        assert guarded.metrics.poison_wins < metrics.poison_wins

    def test_poisoned_replay_passes_validation(self, scenario):
        adversary = AdversarySpec(
            poison=PoisonAttackSpec(rate=0.1, success=0.5)
        )
        result = self.replay(
            scenario, ResilienceConfig.vanilla(), adversary=adversary,
            validation=True,
        )
        assert result.metrics.poison_stored > 0

    def test_flash_crowd_arrivals_are_counted(self, scenario):
        adversary = AdversarySpec(
            flash=FlashCrowdSpec(
                start=scenario.attack_start, duration=600.0,
                queries_per_minute=60.0, hot_zones=3,
            )
        )
        baseline = self.replay(scenario, ResilienceConfig.vanilla())
        flashed = self.replay(
            scenario, ResilienceConfig.vanilla(), adversary=adversary
        )
        assert flashed.metrics.flash_queries == 600
        # Flash arrivals are legitimate traffic: they join the SR census.
        assert (
            flashed.metrics.sr_queries
            == baseline.metrics.sr_queries + 600
        )

    def test_draws_are_byte_identical_at_workers_1_vs_4(
        self, scenario, tmp_path
    ):
        adversary = AdversarySpec(
            nxns=NxnsAttackSpec(
                start=scenario.attack_start, duration=600.0,
                queries_per_minute=30.0, fan_out=5, delegations=4,
            ),
            poison=PoisonAttackSpec(rate=0.1, success=0.5),
        )
        configs = (
            ResilienceConfig.vanilla(),
            ResilienceConfig.vanilla().with_defenses(fetch_budget=2),
        )

        def specs(tag):
            return [
                ReplaySpec.for_scenario(
                    scenario, "TRC1", config,
                    adversary=adversary,
                    observe=ObservationSpec(
                        events_path=str(
                            tmp_path / f"{tag}-{config.label}.jsonl"
                        )
                    ),
                )
                for config in configs
            ]

        serial = run_replays(specs("serial"), workers=1)
        fanned = run_replays(specs("fanned"), workers=4)
        assert fanned == serial
        for config in configs:
            serial_log = (tmp_path / f"serial-{config.label}.jsonl")
            fanned_log = (tmp_path / f"fanned-{config.label}.jsonl")
            assert serial_log.read_bytes() == fanned_log.read_bytes()

    def test_summary_carries_the_adversary_columns(self, scenario):
        adversary = self.nxns(scenario, fan_out=4)
        result = self.replay(
            scenario, ResilienceConfig.vanilla(), adversary=adversary
        )
        summary = result.to_summary()
        assert summary.attack_stub_queries == 300
        assert summary.attack_cs_queries == result.metrics.attack_cs_queries
        assert (
            summary.amplification_factor
            == result.metrics.amplification_factor
        )
