"""Tests for the DDoS attack model."""

import pytest

from repro.dns.name import root_name
from repro.simulation.attack import (
    AttackSchedule,
    AttackWindow,
    attack_on_root_and_tlds,
    attack_on_zones,
)

from tests.helpers import build_mini_internet, name

DAY = 86400.0
HOUR = 3600.0


@pytest.fixture
def mini():
    return build_mini_internet()


class TestAttackWindow:
    def test_active_bounds_are_half_open(self):
        window = AttackWindow(10.0, 20.0, frozenset([root_name()]))
        assert not window.active_at(9.99)
        assert window.active_at(10.0)
        assert window.active_at(19.99)
        assert not window.active_at(20.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            AttackWindow(10.0, 10.0, frozenset())

    def test_duration(self):
        assert AttackWindow(0.0, 6 * HOUR, frozenset()).duration == 6 * HOUR

    def test_default_intensity_is_blackout(self):
        assert AttackWindow(0.0, 10.0, frozenset()).intensity == 1.0

    @pytest.mark.parametrize("intensity", [-0.1, 1.5])
    def test_out_of_range_intensity_rejected(self, intensity):
        with pytest.raises(ValueError):
            AttackWindow(0.0, 10.0, frozenset(), intensity=intensity)


class TestAttackSchedule:
    def test_blocks_targeted_zone_servers_only_during_window(self, mini):
        schedule = attack_on_zones(
            mini.tree, [name("example.test.")], start=100.0, duration=50.0
        )
        address = mini.address_of("ns1.example.test.")
        assert not schedule.is_blocked(address, 99.0)
        assert schedule.is_blocked(address, 120.0)
        assert not schedule.is_blocked(address, 151.0)

    def test_untargeted_zone_unaffected(self, mini):
        schedule = attack_on_zones(mini.tree, [name("example.test.")],
                                   start=0.0, duration=100.0)
        assert not schedule.is_blocked(mini.address_of("ns1.provider.test."), 50.0)

    def test_shared_server_blocked_when_any_hosted_zone_attacked(self, mini):
        # provider.test.'s servers also serve hosted.test.; attacking
        # hosted.test. floods those servers.
        schedule = attack_on_zones(mini.tree, [name("hosted.test.")],
                                   start=0.0, duration=100.0)
        assert schedule.is_blocked(mini.address_of("ns1.provider.test."), 50.0)

    def test_root_and_tld_attack_covers_all_tlds(self, mini):
        schedule = attack_on_root_and_tlds(mini.tree, start=0.0, duration=10.0)
        for server in ("a.root.", "b.root.", "ns1.test.", "ns1.alt."):
            assert schedule.is_blocked(mini.address_of(server), 5.0)
        assert not schedule.is_blocked(mini.address_of("ns1.example.test."), 5.0)

    def test_default_window_matches_paper(self, mini):
        schedule = attack_on_root_and_tlds(mini.tree)
        window = schedule.windows()[0]
        assert window.start == 6 * DAY
        assert window.duration == 6 * HOUR

    def test_any_active_and_blocked_zone_names(self, mini):
        schedule = attack_on_zones(mini.tree, [name("test.")],
                                   start=10.0, duration=10.0)
        assert not schedule.any_active(5.0)
        assert schedule.any_active(15.0)
        assert schedule.blocked_zone_names(15.0) == {name("test.")}
        assert schedule.blocked_zone_names(25.0) == set()

    def test_multiple_windows(self, mini):
        schedule = AttackSchedule(mini.tree)
        schedule.add_window(
            AttackWindow(0.0, 10.0, frozenset([name("test.")]))
        )
        schedule.add_window(
            AttackWindow(20.0, 30.0, frozenset([name("alt.")]))
        )
        test_address = mini.address_of("ns1.test.")
        alt_address = mini.address_of("ns1.alt.")
        assert schedule.is_blocked(test_address, 5.0)
        assert not schedule.is_blocked(alt_address, 5.0)
        assert schedule.is_blocked(alt_address, 25.0)
        assert not schedule.is_blocked(test_address, 25.0)

    def test_unknown_zone_blocks_nothing(self, mini):
        schedule = attack_on_zones(mini.tree, [name("ghost.test.")],
                                   start=0.0, duration=10.0)
        for address in mini.addresses.values():
            assert not schedule.is_blocked(address, 5.0)

    def test_empty_zone_list_rejected(self, mini):
        with pytest.raises(ValueError):
            attack_on_zones(mini.tree, [], start=0.0, duration=10.0)

    def test_empty_schedule_blocks_nothing(self, mini):
        schedule = AttackSchedule(mini.tree)
        address = mini.address_of("ns1.test.")
        assert not schedule.is_blocked(address, 0.0)
        assert schedule.block_intensity(address, 1e9) == 0.0


class TestIntensity:
    def test_partial_window_reports_intensity_not_blocked(self, mini):
        schedule = attack_on_zones(mini.tree, [name("example.test.")],
                                   start=100.0, duration=50.0, intensity=0.4)
        address = mini.address_of("ns1.example.test.")
        assert schedule.block_intensity(address, 120.0) == 0.4
        assert not schedule.is_blocked(address, 120.0)
        assert schedule.block_intensity(address, 99.0) == 0.0

    def test_overlapping_windows_combine_by_max(self, mini):
        schedule = AttackSchedule(mini.tree)
        schedule.add_window(
            AttackWindow(0.0, 100.0, frozenset([name("test.")]), intensity=0.3)
        )
        schedule.add_window(
            AttackWindow(50.0, 150.0, frozenset([name("test.")]), intensity=0.8)
        )
        address = mini.address_of("ns1.test.")
        assert schedule.block_intensity(address, 25.0) == 0.3
        assert schedule.block_intensity(address, 75.0) == 0.8
        assert schedule.block_intensity(address, 125.0) == 0.8
        assert schedule.block_intensity(address, 175.0) == 0.0


class TestSegmentCache:
    """The bisect-based lookup agrees with a naive window scan."""

    def naive_intensity(self, schedule, address, now):
        best = 0.0
        for window, blocked in zip(schedule._windows,
                                   schedule._blocked_by_window):
            if window.active_at(now) and address in blocked:
                best = max(best, window.intensity)
        return best

    def test_matches_naive_scan_across_boundaries(self, mini):
        schedule = AttackSchedule(mini.tree)
        schedule.add_window(
            AttackWindow(10.0, 40.0, frozenset([name("test.")]), intensity=0.5)
        )
        schedule.add_window(
            AttackWindow(20.0, 60.0, frozenset([name("alt.")])),
        )
        schedule.add_window(
            AttackWindow(30.0, 50.0, frozenset([name("test.")]), intensity=0.9)
        )
        probes = [0.0, 9.99, 10.0, 15.0, 20.0, 25.0, 30.0, 39.99, 40.0,
                  45.0, 50.0, 55.0, 60.0, 99.0]
        for address in mini.addresses.values():
            for now in probes:
                assert schedule.block_intensity(address, now) == (
                    self.naive_intensity(schedule, address, now)
                ), (address, now)

    def test_add_window_invalidates_cache(self, mini):
        schedule = AttackSchedule(mini.tree)
        schedule.add_window(
            AttackWindow(0.0, 10.0, frozenset([name("test.")]))
        )
        address = mini.address_of("ns1.test.")
        assert schedule.is_blocked(address, 5.0)  # populates the cache
        schedule.add_window(
            AttackWindow(20.0, 30.0, frozenset([name("test.")]))
        )
        assert schedule.is_blocked(address, 25.0)
        assert not schedule.is_blocked(address, 15.0)
