"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_advance_fires_due_events_in_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda t: fired.append(("b", t)))
        engine.schedule(1.0, lambda t: fired.append(("a", t)))
        engine.schedule(5.0, lambda t: fired.append(("c", t)))
        count = engine.advance_to(3.0)
        assert count == 2
        assert fired == [("a", 1.0), ("b", 2.0)]
        assert engine.now == 3.0

    def test_event_sees_its_fire_time_as_now(self):
        engine = SimulationEngine()
        observed = []
        engine.schedule(4.0, lambda t: observed.append(engine.now))
        engine.advance_to(10.0)
        assert observed == [4.0]

    def test_events_scheduled_during_firing_are_honoured(self):
        engine = SimulationEngine()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3:
                engine.schedule(t + 1, chain)

        engine.schedule(1.0, chain)
        engine.advance_to(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_schedule_in_past_clamps_to_now(self):
        engine = SimulationEngine()
        engine.advance_to(5.0)
        fired = []
        engine.schedule(1.0, lambda t: fired.append(t))
        engine.advance_to(5.0)
        assert fired == [5.0]

    def test_schedule_in_delay(self):
        engine = SimulationEngine()
        engine.advance_to(2.0)
        fired = []
        engine.schedule_in(3.0, lambda t: fired.append(t))
        engine.advance_to(10.0)
        assert fired == [5.0]

    def test_schedule_in_rejects_negative(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda t: None)

    def test_backwards_advance_rejected(self):
        engine = SimulationEngine()
        engine.advance_to(5.0)
        with pytest.raises(ValueError):
            engine.advance_to(4.0)

    def test_cancelled_token_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        token = engine.schedule(1.0, lambda t: fired.append(t))
        assert engine.cancel(token)
        engine.advance_to(2.0)
        assert fired == []
        assert not engine.cancel(token)

    def test_run_drains_everything(self):
        engine = SimulationEngine()
        fired = []
        for time in (3.0, 1.0, 2.0):
            engine.schedule(time, lambda t: fired.append(t))
        count = engine.run()
        assert count == 3
        assert fired == [1.0, 2.0, 3.0]
        assert engine.pending_events() == 0

    def test_run_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda t: fired.append(t))
        engine.schedule(9.0, lambda t: fired.append(t))
        engine.run(until=5.0)
        assert fired == [1.0]
        assert engine.pending_events() == 1
