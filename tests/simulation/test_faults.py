"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.dns.message import Question
from repro.dns.rrtypes import RRType
from repro.simulation.attack import attack_on_zones
from repro.simulation.faults import FaultInjector, FaultSpec, unit_hash
from repro.simulation.network import Network

from tests.helpers import build_mini_internet, name


@pytest.fixture
def mini():
    return build_mini_internet()


def question(text="www.example.test."):
    return Question(name(text), RRType.A)


class TestUnitHash:
    def test_deterministic(self):
        assert unit_hash(7, "loss", "10.0.0.1", 3) == unit_hash(
            7, "loss", "10.0.0.1", 3
        )

    def test_in_unit_interval(self):
        draws = [
            unit_hash(seed, stream, address, ordinal)
            for seed in (0, 1)
            for stream in ("attack", "loss")
            for address in ("10.0.0.1", "10.0.0.2")
            for ordinal in range(10)
        ]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_streams_are_split(self):
        # Different key components give (near-certainly) different draws.
        base = unit_hash(7, "loss", "10.0.0.1", 0)
        assert unit_hash(7, "attack", "10.0.0.1", 0) != base
        assert unit_hash(7, "loss", "10.0.0.2", 0) != base
        assert unit_hash(7, "loss", "10.0.0.1", 1) != base
        assert unit_hash(8, "loss", "10.0.0.1", 0) != base

    def test_roughly_uniform(self):
        draws = [unit_hash(1, "u", "a", i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestFaultSpecValidation:
    @pytest.mark.parametrize("loss", [-0.1, 1.1, 2.0])
    def test_bad_loss_rejected(self, loss):
        with pytest.raises(ValueError):
            FaultSpec(background_loss=loss)

    @pytest.mark.parametrize("jitter", [-0.5, 1.5])
    def test_bad_jitter_rejected(self, jitter):
        with pytest.raises(ValueError):
            FaultSpec(jitter=jitter)

    @pytest.mark.parametrize("period", [0.0, -10.0])
    def test_bad_flap_period_rejected(self, period):
        with pytest.raises(ValueError):
            FaultSpec(flap_period=period)

    @pytest.mark.parametrize("duty", [-0.1, 1.01])
    def test_bad_flap_duty_rejected(self, duty):
        with pytest.raises(ValueError):
            FaultSpec(flap_period=100.0, flap_duty=duty)

    def test_defaults_are_inert(self):
        spec = FaultSpec()
        assert spec.inert
        assert not spec.flapping_enabled

    def test_full_duty_is_not_flapping(self):
        assert not FaultSpec(flap_period=100.0, flap_duty=1.0).flapping_enabled
        assert FaultSpec(flap_period=100.0, flap_duty=0.5).flapping_enabled

    def test_any_fault_is_not_inert(self):
        assert not FaultSpec(background_loss=0.1).inert
        assert not FaultSpec(jitter=0.2).inert
        assert not FaultSpec(flap_period=60.0, flap_duty=0.5).inert


class TestInjector:
    def test_ordinals_advance_per_address(self):
        injector = FaultSpec().build(seed=1)
        assert injector.next_ordinal("a") == 0
        assert injector.next_ordinal("a") == 1
        assert injector.next_ordinal("b") == 0
        assert injector.next_ordinal("a") == 2

    def test_attack_drop_edges(self):
        injector = FaultSpec().build(seed=1)
        assert not injector.attack_drops("a", 0, 0.0)
        assert injector.attack_drops("a", 0, 1.0)

    def test_partial_attack_drop_rate(self):
        injector = FaultSpec().build(seed=1)
        drops = sum(
            injector.attack_drops("a", ordinal, 0.5) for ordinal in range(2000)
        )
        assert 0.45 < drops / 2000 < 0.55

    def test_loss_drop_rate(self):
        injector = FaultSpec(background_loss=0.2).build(seed=3)
        drops = sum(
            injector.loss_drops("a", ordinal) for ordinal in range(2000)
        )
        assert 0.15 < drops / 2000 < 0.25

    def test_two_injectors_agree(self):
        spec = FaultSpec(background_loss=0.3, jitter=0.2)
        first = spec.build(seed=9)
        second = spec.build(seed=9)
        for ordinal in range(100):
            assert first.loss_drops("a", ordinal) == second.loss_drops(
                "a", ordinal
            )
            assert first.jitter_factor("a", ordinal) == second.jitter_factor(
                "a", ordinal
            )

    def test_flap_duty_cycle(self):
        injector = FaultSpec(flap_period=100.0, flap_duty=0.7).build(seed=1)
        samples = [injector.flap_down("a", t * 1.0) for t in range(1000)]
        down = sum(samples)
        # Down 30% of every period, whatever the hashed phase.
        assert 0.25 < down / 1000 < 0.35
        assert injector.flap_down("a", 42.0) == injector.flap_down("a", 142.0)

    def test_flap_duty_boundary_is_exact(self):
        # The down phase opens exactly at duty*period into the (phase-
        # shifted) cycle: epsilon below is up, epsilon above is down,
        # and the wrap at the period end stays down until position 0.
        period, duty, seed = 100.0, 0.7, 5
        injector = FaultSpec(flap_period=period, flap_duty=duty).build(
            seed=seed
        )
        phase = unit_hash(seed, "flap-phase", "a", 0) * period

        def at_position(position):
            # A time whose phase-shifted cycle position is ``position``,
            # kept strictly positive by a one-period offset.
            return (position - phase) % period + period

        eps = 1e-6
        assert not injector.flap_down("a", at_position(0.0))
        assert not injector.flap_down("a", at_position(duty * period - eps))
        assert injector.flap_down("a", at_position(duty * period + eps))
        assert injector.flap_down("a", at_position(period - eps))

    def test_no_period_or_full_duty_never_flaps(self):
        assert not FaultSpec().build(seed=1).flap_down("a", 5.0)
        full = FaultSpec(flap_period=100.0, flap_duty=1.0).build(seed=1)
        assert not any(full.flap_down("a", float(t)) for t in range(300))

    def test_interleaved_ordinals_stay_monotonic_per_address(self):
        injector = FaultSpec().build(seed=2)
        pattern = ["a", "b", "a", "c", "b", "a", "c", "c", "a", "b"]
        seen: dict[str, list[int]] = {}
        for address in pattern:
            seen.setdefault(address, []).append(
                injector.next_ordinal(address)
            )
        for address, ordinals in seen.items():
            assert ordinals == list(range(pattern.count(address)))

    def test_interleaving_does_not_shift_per_address_draws(self):
        # The draw an address sees for its n-th query must not depend on
        # how other addresses' queries interleave with it.
        spec = FaultSpec(background_loss=0.5)
        interleaved = spec.build(seed=3)
        pattern = ["a", "b", "a", "c", "b", "a", "c", "c", "a", "b"]
        draws: dict[str, list[bool]] = {}
        for address in pattern:
            ordinal = interleaved.next_ordinal(address)
            draws.setdefault(address, []).append(
                interleaved.loss_drops(address, ordinal)
            )
        isolated = spec.build(seed=3)
        for address in ("a", "b", "c"):
            expected = [
                isolated.loss_drops(address, ordinal)
                for ordinal in range(pattern.count(address))
            ]
            assert draws[address] == expected

    def test_flap_address_scoping(self):
        spec = FaultSpec(
            flap_period=100.0, flap_duty=0.0, flap_addresses=("10.0.0.1",)
        )
        injector = spec.build(seed=1)
        assert injector.flap_down("10.0.0.1", 0.0)
        assert not injector.flap_down("10.0.0.2", 0.0)

    def test_jitter_factor_bounds(self):
        injector = FaultSpec(jitter=0.25).build(seed=4)
        factors = [injector.jitter_factor("a", ordinal) for ordinal in range(500)]
        assert all(0.75 <= factor <= 1.25 for factor in factors)
        assert FaultSpec().build(seed=4).jitter_factor("a", 0) == 1.0


class TestNetworkWithFaults:
    def test_total_loss_drops_everything(self, mini):
        injector = FaultSpec(background_loss=1.0).build(seed=1)
        network = Network(mini.tree, faults=injector)
        result = network.query(
            mini.address_of("ns1.example.test."), question(), now=0.0
        )
        assert not result.answered
        assert result.dropped_by == "loss"
        assert result.timed_out
        assert result.latency == network.latency.timeout

    def test_inert_spec_answers_like_no_faults(self, mini):
        address = mini.address_of("ns1.example.test.")
        plain = Network(mini.tree).query(address, question(), now=0.0)
        faulted = Network(mini.tree, faults=FaultSpec().build(seed=1)).query(
            address, question(), now=0.0
        )
        assert faulted.answered
        assert faulted.latency == plain.latency
        assert faulted.dropped_by is None

    def test_partial_attack_drops_a_fraction(self, mini):
        attacks = attack_on_zones(
            mini.tree, [name("example.test.")], start=0.0, duration=1000.0,
            intensity=0.5,
        )
        network = Network(
            mini.tree, attacks=attacks, faults=FaultSpec().build(seed=1)
        )
        address = mini.address_of("ns1.example.test.")
        outcomes = [
            network.query(address, question(), now=10.0) for _ in range(400)
        ]
        dropped = [r for r in outcomes if r.dropped_by == "attack"]
        answered = [r for r in outcomes if r.answered]
        assert len(dropped) + len(answered) == 400
        assert 140 < len(dropped) < 260

    def test_full_intensity_with_injector_is_a_blackout(self, mini):
        attacks = attack_on_zones(
            mini.tree, [name("example.test.")], start=0.0, duration=100.0,
        )
        network = Network(
            mini.tree, attacks=attacks, faults=FaultSpec().build(seed=1)
        )
        address = mini.address_of("ns1.example.test.")
        for _ in range(20):
            result = network.query(address, question(), now=50.0)
            assert result.dropped_by == "attack"

    def test_flap_down_is_unreachable(self, mini):
        injector = FaultSpec(flap_period=100.0, flap_duty=0.0).build(seed=1)
        network = Network(mini.tree, faults=injector)
        address = mini.address_of("ns1.example.test.")
        assert not network.is_reachable(address, 10.0)
        result = network.query(address, question(), now=10.0)
        assert result.dropped_by == "flap"

    def test_jitter_scales_rtt_within_bounds(self, mini):
        injector = FaultSpec(jitter=0.5).build(seed=2)
        network = Network(mini.tree, faults=injector)
        address = mini.address_of("ns1.example.test.")
        base = network.latency.rtt_for(address)
        latencies = {
            network.query(address, question(), now=0.0).latency
            for _ in range(50)
        }
        assert all(0.5 * base - 1e-12 <= lat <= 1.5 * base + 1e-12
                   for lat in latencies)
        assert len(latencies) > 10  # actually jittering, not constant

    def test_replayed_network_is_byte_identical(self, mini):
        spec = FaultSpec(background_loss=0.3, jitter=0.2)
        address = mini.address_of("ns1.example.test.")

        def run():
            network = Network(mini.tree, faults=spec.build(seed=11))
            return [
                (r.answered, r.dropped_by, r.latency)
                for r in (
                    network.query(address, question(), now=float(i))
                    for i in range(200)
                )
            ]

        assert run() == run()
