"""Tests for replay metrics and window accounting."""

import pytest

from repro.simulation.metrics import MemorySample, ReplayMetrics


class TestSrAccounting:
    def test_failure_rate(self):
        metrics = ReplayMetrics()
        for index in range(10):
            metrics.record_sr_query(now=float(index), failed=index < 3)
        assert metrics.sr_queries == 10
        assert metrics.sr_failures == 3
        assert metrics.sr_failure_rate == pytest.approx(0.3)

    def test_empty_rate_is_zero(self):
        assert ReplayMetrics().sr_failure_rate == 0.0
        assert ReplayMetrics().cs_failure_rate == 0.0

    def test_cache_hit_and_nxdomain_flags(self):
        metrics = ReplayMetrics()
        metrics.record_sr_query(0.0, failed=False, cache_hit=True)
        metrics.record_sr_query(1.0, failed=False, nxdomain=True)
        assert metrics.sr_cache_hits == 1
        assert metrics.sr_nxdomain == 1


class TestCsAccounting:
    def test_demand_vs_renewal_separation(self):
        metrics = ReplayMetrics()
        metrics.record_cs_query(0.0, failed=True)
        metrics.record_cs_query(0.0, failed=False)
        metrics.record_cs_query(0.0, failed=True, renewal=True)
        assert metrics.cs_demand_queries == 2
        assert metrics.cs_demand_failures == 1
        assert metrics.cs_renewal_queries == 1
        assert metrics.cs_renewal_failures == 1
        # Failure rate is demand-only; total counts everything.
        assert metrics.cs_failure_rate == pytest.approx(0.5)
        assert metrics.total_outgoing == 3


class TestWindows:
    def test_window_only_counts_inside(self):
        metrics = ReplayMetrics()
        window = metrics.watch_window(10.0, 20.0)
        metrics.record_sr_query(5.0, failed=True)
        metrics.record_sr_query(15.0, failed=True)
        metrics.record_sr_query(15.0, failed=False)
        metrics.record_sr_query(20.0, failed=True)  # end is exclusive
        assert window.sr_queries == 2
        assert window.sr_failures == 1
        assert window.sr_failure_rate == pytest.approx(0.5)

    def test_window_cs_ignores_renewal(self):
        metrics = ReplayMetrics()
        window = metrics.watch_window(0.0, 10.0)
        metrics.record_cs_query(5.0, failed=True)
        metrics.record_cs_query(5.0, failed=True, renewal=True)
        assert window.cs_queries == 1
        assert window.cs_failures == 1

    def test_multiple_windows(self):
        metrics = ReplayMetrics()
        first = metrics.watch_window(0.0, 10.0)
        second = metrics.watch_window(5.0, 15.0)
        metrics.record_sr_query(7.0, failed=False)
        assert first.sr_queries == 1
        assert second.sr_queries == 1

    def test_empty_window_rates(self):
        metrics = ReplayMetrics()
        window = metrics.watch_window(0.0, 10.0)
        assert window.sr_failure_rate == 0.0
        assert window.cs_failure_rate == 0.0


class TestOverheadAndLatency:
    def test_message_overhead(self):
        baseline = ReplayMetrics()
        for _ in range(100):
            baseline.record_cs_query(0.0, failed=False)
        scheme = ReplayMetrics()
        for _ in range(176):
            scheme.record_cs_query(0.0, failed=False)
        assert scheme.message_overhead_vs(baseline) == pytest.approx(0.76)

    def test_overhead_against_empty_baseline_is_zero(self):
        assert ReplayMetrics().message_overhead_vs(ReplayMetrics()) == 0.0
        assert ReplayMetrics().byte_overhead_vs(ReplayMetrics()) == 0.0

    def test_mean_latency(self):
        metrics = ReplayMetrics()
        metrics.record_sr_query(0.0, failed=False)
        metrics.record_sr_query(1.0, failed=False)
        metrics.record_latency(0.2)
        metrics.record_latency(0.4)
        assert metrics.mean_latency == pytest.approx(0.3)

    def test_memory_samples_accumulate(self):
        metrics = ReplayMetrics()
        metrics.record_memory(MemorySample(0.0, 1, 10))
        metrics.record_memory(MemorySample(1.0, 2, 20))
        assert [s.records_cached for s in metrics.memory_samples] == [10, 20]
