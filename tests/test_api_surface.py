"""The ``repro.api`` facade: every name works, nothing private leaks.

DESIGN.md's contract for the facade is a curated, stable ``__all__``;
these tests keep it honest against drift in either direction — entries
that stopped importing, and public objects that were added to the
module body but never listed (or listed but actually private).
"""

from __future__ import annotations

import pickle
import types

from repro import api


def test_every_all_entry_resolves() -> None:
    for name in api.__all__:
        assert hasattr(api, name), f"api.__all__ lists missing name {name!r}"


def test_all_is_sorted_and_unique() -> None:
    assert len(set(api.__all__)) == len(api.__all__)
    assert list(api.__all__) == sorted(api.__all__)


def test_no_private_or_module_leaks() -> None:
    """``__all__`` must list exactly the public non-module attributes.

    Modules reachable as attributes (``repro.core`` etc.) are import
    side effects, not API; private names must never be listed.
    """
    listed = set(api.__all__)
    public = {
        name
        for name, value in vars(api).items()
        if not name.startswith("_")
        and not isinstance(value, types.ModuleType)
        and name != "annotations"
    }
    assert listed == public, (
        f"unlisted public names: {sorted(public - listed)}; "
        f"listed but absent: {sorted(listed - public)}"
    )


def test_star_import_matches_all() -> None:
    namespace: dict[str, object] = {}
    exec("from repro.api import *", namespace)  # noqa: S102
    imported = {name for name in namespace if not name.startswith("_")}
    assert imported == set(api.__all__)


def test_new_pr8_names_are_exported() -> None:
    from repro.api import Clock, ServeSpec, Upstream, VirtualClock, serve

    assert callable(serve)
    spec = ServeSpec()
    assert pickle.loads(pickle.dumps(spec)) == spec
    # The protocols are runtime-checkable: the simulated pair satisfies
    # them, which is the whole point of the redesign.
    from repro.experiments.scenarios import Scale, make_scenario
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.network import Network

    engine = SimulationEngine()
    assert isinstance(VirtualClock(engine), Clock)
    built = make_scenario(Scale.TINY, seed=7).built
    assert isinstance(Network(built.tree), Upstream)
