#!/usr/bin/env python3
"""CI smoke: a real ``repro serve`` process answers raw-socket queries.

Launches the CLI server on loopback over the TINY tree, then — using
only the standard library, with the query built and the answer parsed
by the classic raw ``struct`` layout rather than the server's own
codec — resolves three of its sample names over UDP, repeats one query
over TCP (the truncation-fallback transport, RFC 1035 §4.2.2 framing),
and scrapes the metrics endpoint for nonzero query counters.

Exit status 0 means every check passed; any failure raises.
"""

from __future__ import annotations

import os
import re
import socket
import struct
import subprocess
import sys
import time
import urllib.request

HOST = "127.0.0.1"
DNS_PORT = int(os.environ.get("SMOKE_DNS_PORT", "5355"))
METRICS_PORT = int(os.environ.get("SMOKE_METRICS_PORT", "9155"))
STARTUP_SECONDS = 90.0

_DIG_LINE = re.compile(r"dig @\S+ -p \d+ (\S+) A$")


def build_query(tid: int, domain: str) -> bytes:
    header = struct.pack("!HHHHHH", tid, 0x0100, 1, 0, 0, 0)
    qname = b"".join(
        bytes([len(part)]) + part.encode()
        for part in domain.rstrip(".").split(".")
    ) + b"\x00"
    return header + qname + struct.pack("!HH", 1, 1)


def read_name(data: bytes, offset: int) -> tuple[str, int]:
    labels = []
    end = None
    while True:
        length = data[offset]
        if length & 0xC0 == 0xC0:
            pointer = struct.unpack("!H", data[offset:offset + 2])[0] & 0x3FFF
            if end is None:
                end = offset + 2
            offset = pointer
            continue
        offset += 1
        if length == 0:
            return ".".join(labels), (end if end is not None else offset)
        labels.append(data[offset:offset + length].decode())
        offset += length


def parse_reply(data: bytes, tid: int) -> list[tuple[str, int, str]]:
    """Header checks + the answer section as (owner, ttl, dotted-quad)."""
    got_tid, flags, qdcount, ancount, _ns, _ar = struct.unpack(
        "!HHHHHH", data[:12]
    )
    assert got_tid == tid, f"transaction id {got_tid:#x} != {tid:#x}"
    assert flags & 0x8000, "QR bit clear on a response"
    rcode = flags & 0xF
    assert rcode == 0, f"rcode {rcode}"
    offset = 12
    for _ in range(qdcount):
        _, offset = read_name(data, offset)
        offset += 4
    answers = []
    for _ in range(ancount):
        owner, offset = read_name(data, offset)
        rtype, _rclass, ttl, rdlength = struct.unpack(
            "!HHIH", data[offset:offset + 10]
        )
        offset += 10
        if rtype == 1 and rdlength == 4:
            answers.append(
                (owner, ttl,
                 ".".join(str(b) for b in data[offset:offset + 4]))
            )
        offset += rdlength
    return answers


def udp_query(domain: str, tid: int, timeout: float = 3.0) -> bytes:
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.settimeout(timeout)
        sock.sendto(build_query(tid, domain), (HOST, DNS_PORT))
        while True:
            data, _ = sock.recvfrom(4096)
            if len(data) >= 2 and struct.unpack("!H", data[:2])[0] == tid:
                return data


def tcp_query(domain: str, tid: int, timeout: float = 5.0) -> bytes:
    packet = build_query(tid, domain)
    with socket.create_connection((HOST, DNS_PORT), timeout=timeout) as sock:
        sock.sendall(struct.pack("!H", len(packet)) + packet)
        header = _recv_exact(sock, 2)
        (length,) = struct.unpack("!H", header)
        return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise AssertionError("TCP connection closed mid-message")
        chunks += chunk
    return chunks


def wait_for_names(proc: subprocess.Popen) -> list[str]:
    """Read the server's startup banner until three sample names print."""
    names: list[str] = []
    deadline = time.time() + STARTUP_SECONDS
    assert proc.stdout is not None
    while len(names) < 3:
        if time.time() > deadline:
            raise AssertionError(
                f"server printed {len(names)} sample names "
                f"within {STARTUP_SECONDS}s"
            )
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited early with status {proc.poll()}"
            )
        print(f"[server] {line.rstrip()}")
        match = _DIG_LINE.search(line.strip())
        if match:
            names.append(match.group(1))
    return names


def main() -> None:
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--scale", "tiny", "--seed", "7",
            "--host", HOST,
            "--port", str(DNS_PORT),
            "--metrics-port", str(METRICS_PORT),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        names = wait_for_names(proc)

        for index, domain in enumerate(names):
            reply = udp_query(domain, tid=0x5000 + index)
            answers = parse_reply(reply, tid=0x5000 + index)
            assert answers, f"no A answers for {domain} over UDP"
            print(f"udp ok: {domain} -> "
                  + ", ".join(f"{quad} (ttl {ttl})" for _o, ttl, quad in answers))

        tcp_reply = tcp_query(names[0], tid=0x6000)
        tcp_answers = parse_reply(tcp_reply, tid=0x6000)
        assert tcp_answers, f"no A answers for {names[0]} over TCP"
        udp_answers = parse_reply(udp_query(names[0], tid=0x6001), tid=0x6001)
        assert {quad for _o, _t, quad in tcp_answers} == {
            quad for _o, _t, quad in udp_answers
        }, "TCP and UDP answers disagree"
        print(f"tcp ok: {names[0]} matches the UDP answer")

        body = urllib.request.urlopen(
            f"http://{HOST}:{METRICS_PORT}/metrics", timeout=10
        ).read().decode("utf-8")
        counts = {
            transport: int(value)
            for transport, value in re.findall(
                r'repro_serve_queries_total\{transport="(\w+)"\} (\d+)', body
            )
        }
        assert counts.get("udp", 0) >= 4, f"udp counter too low: {counts}"
        assert counts.get("tcp", 0) >= 1, f"tcp counter missing: {counts}"
        assert "repro_events_total" in body, "obs sink block missing"
        print(f"metrics ok: {counts}")
        print("serve smoke passed")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    main()
